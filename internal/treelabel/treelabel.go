// Package treelabel implements the Thorup–Zwick tree labeling and routing
// scheme [20] the paper uses for its "tree routing" steps: each tree node
// gets an interval label of 2⌈log₂ n⌉ bits (preorder start and subtree
// size), and routing toward a label goes to the child whose interval
// contains it, or to the parent when none does.
//
// Labels are constructible distributedly in O(depth) rounds: a convergecast
// accumulates subtree sizes, then a downcast assigns preorder offsets. Both
// the centralized constructor (used inside the routing hierarchies, where
// many overlapping trees are labeled and the paper multiplexes their rounds)
// and a genuinely distributed congest implementation are provided; tests
// pin them to each other.
package treelabel

import (
	"fmt"
	"math/bits"

	"pde/internal/congest"
	"pde/internal/graph"
)

// Label is a tree-node label: the half-open preorder interval
// [Pre, Pre+Size) of its subtree.
type Label struct {
	Pre  int32
	Size int32
}

// Contains reports whether other lies in l's subtree interval.
func (l Label) Contains(other Label) bool {
	return l.Pre <= other.Pre && other.Pre < l.Pre+l.Size
}

// Bits returns the label's encoded size for a tree on n nodes.
func (l Label) Bits(n int) int { return 2 * bits.Len32(uint32(n)) }

// Labeling is a labeled rooted tree over an arbitrary subset of graph
// nodes.
type Labeling struct {
	Root   int
	Labels map[int]Label
	// Parent maps each non-root tree node to its parent.
	Parent map[int]int
	// Children lists each node's children in preorder order.
	Children map[int][]int
	Height   int
	// Rounds is the distributed construction cost: one convergecast and
	// one downcast over the tree, 2·(height+1) rounds.
	Rounds int
}

// Build labels the tree given by parent pointers (root maps to -1 or is
// absent). It validates that the structure is a tree rooted at root.
func Build(parent map[int]int, root int) (*Labeling, error) {
	children := make(map[int][]int, len(parent))
	nodes := make(map[int]bool, len(parent)+1)
	nodes[root] = true
	for v, p := range parent {
		if v == root {
			if p != -1 {
				return nil, fmt.Errorf("treelabel: root %d has parent %d", root, p)
			}
			continue
		}
		nodes[v] = true
		children[p] = append(children[p], v)
	}
	// Deterministic child order.
	for p := range children {
		sortInts(children[p])
	}
	lab := &Labeling{
		Root:     root,
		Labels:   make(map[int]Label, len(nodes)),
		Parent:   make(map[int]int, len(parent)),
		Children: children,
	}
	for v, p := range parent {
		if v != root {
			lab.Parent[v] = p
		}
	}
	// Iterative DFS assigning preorder numbers; subtree sizes on unwind.
	type frame struct {
		node  int
		child int
	}
	next := int32(0)
	stack := []frame{{node: root}}
	lab.Labels[root] = Label{Pre: next}
	next++
	depth := map[int]int{root: 0}
	visited := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := children[f.node]
		if f.child < len(kids) {
			c := kids[f.child]
			f.child++
			if _, dup := lab.Labels[c]; dup {
				return nil, fmt.Errorf("treelabel: node %d reached twice (cycle?)", c)
			}
			lab.Labels[c] = Label{Pre: next}
			next++
			depth[c] = depth[f.node] + 1
			if depth[c] > lab.Height {
				lab.Height = depth[c]
			}
			visited++
			stack = append(stack, frame{node: c})
			continue
		}
		l := lab.Labels[f.node]
		l.Size = next - l.Pre
		lab.Labels[f.node] = l
		stack = stack[:len(stack)-1]
	}
	if visited != len(nodes) {
		return nil, fmt.Errorf("treelabel: %d of %d nodes reachable from root %d", visited, len(nodes), root)
	}
	lab.Rounds = 2 * (lab.Height + 1)
	return lab, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// NextHop returns the neighbor of x on the tree path toward target.
func (l *Labeling) NextHop(x int, target Label) (int, error) {
	mine, ok := l.Labels[x]
	if !ok {
		return 0, fmt.Errorf("treelabel: node %d not in tree", x)
	}
	if mine.Pre == target.Pre {
		return x, nil
	}
	if !mine.Contains(target) {
		p, ok := l.Parent[x]
		if !ok {
			return 0, fmt.Errorf("treelabel: target %v outside tree rooted at %d", target, l.Root)
		}
		return p, nil
	}
	for _, c := range l.Children[x] {
		if l.Labels[c].Contains(target) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("treelabel: inconsistent labeling at node %d", x)
}

// Route walks the tree from x to the node labeled target, returning the
// node sequence.
func (l *Labeling) Route(x int, target Label) ([]int, error) {
	path := []int{x}
	cur := x
	for steps := 0; l.Labels[cur].Pre != target.Pre; steps++ {
		if steps > len(l.Labels)+1 {
			return nil, fmt.Errorf("treelabel: route from %d did not terminate", x)
		}
		next, err := l.NextHop(cur, target)
		if err != nil {
			return nil, err
		}
		path = append(path, next)
		cur = next
	}
	return path, nil
}

// TableWords returns the routing-table size of node x in words: its own
// label, its parent, and one interval per child. Summed over a tree this
// is O(|T|); the per-node cost is what the experiments report.
func (l *Labeling) TableWords(x int) int {
	return 3 + 2*len(l.Children[x])
}

// --- Distributed construction -------------------------------------------

type labelMsg struct {
	kind  uint8 // 1 = subtree size up, 2 = preorder offset down
	value int32
}

func (m labelMsg) Bits() int { return 8 + bits.Len32(uint32(m.value)) }

type labelProc struct {
	tree    *congest.Tree
	size    int32
	waiting int
	childSz map[int]int32
	sentUp  bool
	label   Label
	has     bool
	pushed  bool
}

func (p *labelProc) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	p.waiting = len(p.tree.Children[v])
	p.childSz = make(map[int]int32, p.waiting)
	p.size = 1
	p.advance(ctx)
}

func (p *labelProc) Round(ctx *congest.Ctx) {
	for _, in := range ctx.In() {
		m := in.Msg.(labelMsg)
		switch m.kind {
		case 1:
			p.childSz[in.From] = m.value
			p.size += m.value
			p.waiting--
		case 2:
			p.label = Label{Pre: m.value, Size: p.size}
			p.has = true
		}
	}
	p.advance(ctx)
}

func (p *labelProc) advance(ctx *congest.Ctx) {
	v := ctx.Node()
	isRoot := p.tree.Parent[v] < 0
	if p.waiting == 0 && !p.sentUp {
		p.sentUp = true
		if !isRoot {
			parent := int(p.tree.Parent[v])
			for port, e := range ctx.Neighbors() {
				if e.To == parent {
					ctx.Send(port, labelMsg{kind: 1, value: p.size})
					break
				}
			}
		} else {
			p.label = Label{Pre: 0, Size: p.size}
			p.has = true
		}
	}
	if p.has && !p.pushed {
		p.pushed = true
		// Assign children offsets in increasing node order, matching the
		// centralized Build.
		kids := make([]int, 0, len(p.tree.Children[v]))
		for _, c := range p.tree.Children[v] {
			kids = append(kids, int(c))
		}
		sortInts(kids)
		offset := p.label.Pre + 1
		offsets := make(map[int]int32, len(kids))
		for _, c := range kids {
			offsets[c] = offset
			offset += p.childSz[c]
		}
		for port, e := range ctx.Neighbors() {
			if off, ok := offsets[e.To]; ok {
				ctx.Send(port, labelMsg{kind: 2, value: off})
			}
		}
	}
}

// BuildDistributed labels a spanning tree of g with the two-sweep congest
// algorithm and returns the labeling plus execution metrics. It matches
// Build exactly on the same tree.
func BuildDistributed(g *graph.Graph, t *congest.Tree, cfg congest.Config) (*Labeling, *congest.Metrics, error) {
	n := g.N()
	procs := make([]congest.Proc, n)
	states := make([]labelProc, n)
	for v := 0; v < n; v++ {
		states[v] = labelProc{tree: t}
		procs[v] = &states[v]
	}
	met, err := congest.Run(g, procs, cfg)
	if err != nil {
		return nil, nil, err
	}
	lab := &Labeling{
		Root:     t.Root,
		Labels:   make(map[int]Label, n),
		Parent:   make(map[int]int, n),
		Children: make(map[int][]int, n),
		Height:   t.Height,
		Rounds:   met.ActiveRounds,
	}
	for v := 0; v < n; v++ {
		if !states[v].has {
			return nil, nil, fmt.Errorf("treelabel: node %d was not labeled", v)
		}
		lab.Labels[v] = states[v].label
		if p := t.Parent[v]; p >= 0 {
			lab.Parent[v] = int(p)
		}
		kids := make([]int, 0, len(t.Children[v]))
		for _, c := range t.Children[v] {
			kids = append(kids, int(c))
		}
		sortInts(kids)
		lab.Children[v] = kids
	}
	return lab, met, nil
}
