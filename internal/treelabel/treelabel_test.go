package treelabel

import (
	"math/rand"
	"testing"

	"pde/internal/congest"
	"pde/internal/graph"
)

// pathParents builds a path tree 0-1-2-...-(n-1) rooted at 0.
func pathParents(n int) map[int]int {
	p := map[int]int{0: -1}
	for v := 1; v < n; v++ {
		p[v] = v - 1
	}
	return p
}

func TestBuildPath(t *testing.T) {
	lab, err := Build(pathParents(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		l := lab.Labels[v]
		if l.Pre != int32(v) || l.Size != int32(5-v) {
			t.Fatalf("node %d label %+v, want pre=%d size=%d", v, l, v, 5-v)
		}
	}
	if lab.Height != 4 || lab.Rounds != 10 {
		t.Fatalf("height=%d rounds=%d", lab.Height, lab.Rounds)
	}
}

func TestBuildValidatesStructure(t *testing.T) {
	// Cycle.
	if _, err := Build(map[int]int{0: -1, 1: 2, 2: 1}, 0); err == nil {
		t.Fatal("expected cycle/unreachable error")
	}
	// Root with a parent.
	if _, err := Build(map[int]int{0: 1, 1: -1}, 0); err == nil {
		t.Fatal("expected bad-root error")
	}
}

func TestIntervalNesting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomTree(60, 5, rng)
	sp := graph.Dijkstra(g, 0)
	parent := map[int]int{0: -1}
	for v := 1; v < 60; v++ {
		parent[v] = int(sp.Parent[v])
	}
	lab, err := Build(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Child intervals nest strictly inside parents and are disjoint
	// across siblings.
	for v, kids := range lab.Children {
		lv := lab.Labels[v]
		var prevEnd int32 = lv.Pre + 1
		for _, c := range kids {
			lc := lab.Labels[c]
			if !lv.Contains(lc) {
				t.Fatalf("child %d interval %+v not inside parent %d %+v", c, lc, v, lv)
			}
			if lc.Pre != prevEnd {
				t.Fatalf("child %d starts at %d, want contiguous %d", c, lc.Pre, prevEnd)
			}
			prevEnd = lc.Pre + lc.Size
		}
		if prevEnd != lv.Pre+lv.Size {
			t.Fatalf("node %d subtree not fully covered by children", v)
		}
	}
}

func TestRouteBetweenAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomTree(40, 5, rng)
	sp := graph.Dijkstra(g, 3)
	parent := map[int]int{3: -1}
	for v := 0; v < 40; v++ {
		if v != 3 {
			parent[v] = int(sp.Parent[v])
		}
	}
	lab, err := Build(parent, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 40; u++ {
		for v := 0; v < 40; v++ {
			path, err := lab.Route(u, lab.Labels[v])
			if err != nil {
				t.Fatalf("route %d->%d: %v", u, v, err)
			}
			if path[len(path)-1] != v {
				t.Fatalf("route %d->%d ends at %d", u, v, path[len(path)-1])
			}
			// Path must be the unique tree path: length = depth(u) +
			// depth(v) - 2 depth(lca); just check edges are tree edges
			// and no node repeats.
			seen := make(map[int]bool, len(path))
			for i, x := range path {
				if seen[x] {
					t.Fatalf("route %d->%d revisits %d", u, v, x)
				}
				seen[x] = true
				if i > 0 {
					a, b := path[i-1], x
					if parent[a] != b && parent[b] != a {
						t.Fatalf("route %d->%d uses non-tree edge {%d,%d}", u, v, a, b)
					}
				}
			}
		}
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(50, 0.08, 7, rng)
	tree, _, err := congest.BuildBFSTree(g, 0, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	parent := map[int]int{0: -1}
	for v := 1; v < 50; v++ {
		parent[v] = int(tree.Parent[v])
	}
	want, err := Build(parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, met, err := BuildDistributed(g, tree, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 50; v++ {
		if want.Labels[v] != got.Labels[v] {
			t.Fatalf("node %d: distributed %+v, centralized %+v", v, got.Labels[v], want.Labels[v])
		}
	}
	// Two sweeps over the tree: O(height) rounds.
	if met.ActiveRounds > 2*(tree.Height+1)+2 {
		t.Fatalf("distributed labeling took %d rounds, height %d", met.ActiveRounds, tree.Height)
	}
}

func TestLabelBits(t *testing.T) {
	l := Label{Pre: 5, Size: 9}
	if got := l.Bits(1000); got != 20 {
		t.Fatalf("Bits(1000) = %d, want 20", got)
	}
}

func TestTableWords(t *testing.T) {
	lab, err := Build(map[int]int{0: -1, 1: 0, 2: 0, 3: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.TableWords(0); got != 3+4 {
		t.Fatalf("TableWords(0) = %d, want 7", got)
	}
	if got := lab.TableWords(3); got != 3 {
		t.Fatalf("TableWords(3) = %d, want 3", got)
	}
}

func TestSingleNodeTree(t *testing.T) {
	lab, err := Build(map[int]int{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Labels[7] != (Label{Pre: 0, Size: 1}) {
		t.Fatalf("singleton label %+v", lab.Labels[7])
	}
	path, err := lab.Route(7, lab.Labels[7])
	if err != nil || len(path) != 1 {
		t.Fatalf("self route: %v %v", path, err)
	}
}
