package baseline

import (
	"math/rand"
	"testing"

	"pde/internal/congest"
	"pde/internal/core"
	"pde/internal/graph"
)

func allNodes(n int) []bool {
	m := make([]bool, n)
	for v := range m {
		m[v] = true
	}
	return m
}

func TestExactDetectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 18 + 4*trial
		g := graph.RandomConnected(n, 0.12, 20, rng)
		src := make([]bool, n)
		for v := 0; v < n; v += 2 {
			src[v] = true
		}
		for _, sigma := range []int{1, 3, 6} {
			for _, h := range []int{1, 2, 4, 8} {
				p := ExactParams{IsSource: src, H: h, Sigma: sigma}
				res, err := ExactDetect(g, p, congest.Config{})
				if err != nil {
					t.Fatal(err)
				}
				want := ExactBruteForce(g, p)
				for v := range want {
					if len(res.Lists[v]) != len(want[v]) {
						t.Fatalf("h=%d σ=%d node %d: got %d entries want %d\n got=%v\nwant=%v",
							h, sigma, v, len(res.Lists[v]), len(want[v]), res.Lists[v], want[v])
					}
					for i := range want[v] {
						if res.Lists[v][i].Dist != want[v][i].Dist || res.Lists[v][i].Src != want[v][i].Src {
							t.Fatalf("h=%d σ=%d node %d entry %d: got %+v want %+v",
								h, sigma, v, i, res.Lists[v][i], want[v][i])
						}
					}
				}
			}
		}
	}
}

func TestExactDetectBudgetIsSigmaH(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(20, 0.15, 10, rng)
	p := ExactParams{IsSource: allNodes(20), H: 5, Sigma: 4}
	res, err := ExactDetect(g, p, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != 5*4+1 {
		t.Fatalf("budget = %d, want σh+1 = 21", res.Budget)
	}
}

func TestExactDetectOnFigure1NeedsSigmaHRounds(t *testing.T) {
	// The paper's Figure 1 claim, measured: on the gadget, the exact
	// algorithm's answer for the u-nodes cannot be correct before ~σ·h
	// rounds, because all σh pairs cross the dashed edge.
	h, sigma := 4, 4
	f := graph.NewFigure1(h, sigma)
	isSource := make([]bool, f.G.N())
	for _, s := range f.Sources {
		isSource[s] = true
	}
	want := ExactBruteForce(f.G, ExactParams{IsSource: isSource, H: h + 1, Sigma: sigma})
	correctAt := -1
	probe := func(round int, list func(v int) []WEntry) bool {
		for _, u := range f.UNode {
			got := list(u)
			if len(got) != len(want[u]) {
				return false
			}
			for i := range got {
				if got[i].Dist != want[u][i].Dist || got[i].Src != want[u][i].Src {
					return false
				}
			}
		}
		correctAt = round
		return true
	}
	p := ExactParams{IsSource: isSource, H: h + 1, Sigma: sigma, Probe: probe}
	res, err := ExactDetect(f.G, p, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if correctAt < 0 {
		t.Fatalf("never correct within budget %d", res.Budget)
	}
	// u_i's answers are column i: σ·h distinct pairs must cross one edge,
	// so at least σ·(h-1) rounds are needed (the first column is near).
	if correctAt < sigma*(h-1) {
		t.Fatalf("correct at round %d, impossibly fast (σh = %d)", correctAt, sigma*h)
	}
	// And each u_i's expected list is exactly its column.
	for i := 1; i <= h; i++ {
		u := f.UNode[i-1]
		wantSrcs, wantDist := f.ExpectedList(i)
		if len(want[u]) != sigma {
			t.Fatalf("u_%d brute-force list has %d entries", i, len(want[u]))
		}
		for j, e := range want[u] {
			if int(e.Src) != wantSrcs[j] || e.Dist != wantDist {
				t.Fatalf("u_%d entry %d = %+v, want src %d dist %d", i, j, e, wantSrcs[j], wantDist)
			}
		}
	}
}

func TestExactDetectValidation(t *testing.T) {
	g := graph.NewBuilder(2).AddEdge(0, 1, 1).MustBuild()
	if _, err := ExactDetect(g, ExactParams{IsSource: []bool{true}, H: 1, Sigma: 1}, congest.Config{}); err == nil {
		t.Fatal("expected size validation error")
	}
	if _, err := ExactDetect(g, ExactParams{IsSource: []bool{true, false}, H: -1, Sigma: 1}, congest.Config{}); err == nil {
		t.Fatal("expected negative-H error")
	}
	res, err := ExactDetect(g, ExactParams{IsSource: []bool{true, false}, H: 1, Sigma: 0}, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lists[0]) != 0 {
		t.Fatal("σ=0 should produce empty lists")
	}
}

func TestBellmanFordExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(30, 0.1, 25, rng)
	ap := graph.AllPairs(g)
	res, err := BellmanFordAPSP(g, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 30; v++ {
		for s := 0; s < 30; s++ {
			if res.Dist[v][s] != ap.Dist(v, s) {
				t.Fatalf("BF dist(%d,%d) = %d, want %d", v, s, res.Dist[v][s], ap.Dist(v, s))
			}
		}
	}
	if !res.Metrics.Quiesced {
		t.Fatal("Bellman-Ford should quiesce")
	}
}

func TestBellmanFordParentsRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(25, 0.12, 15, rng)
	res, err := BellmanFordAPSP(g, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 25; v++ {
		for s := 0; s < 25; s++ {
			if v == s {
				continue
			}
			// Walk parents; total weight must equal the distance.
			cur, total := v, graph.Weight(0)
			for steps := 0; cur != s; steps++ {
				if steps > 25 {
					t.Fatalf("parent loop from %d to %d", v, s)
				}
				next := int(res.Parent[cur][s])
				e, ok := g.EdgeBetween(cur, next)
				if !ok {
					t.Fatalf("parent %d of %d toward %d not adjacent", next, cur, s)
				}
				total += e.W
				cur = next
			}
			if total != res.Dist[v][s] {
				t.Fatalf("parent path %d->%d weight %d != dist %d", v, s, total, res.Dist[v][s])
			}
		}
	}
}

func TestFloodingExactAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(25, 0.15, 20, rng)
	ap := graph.AllPairs(g)
	res, err := FloodingAPSP(g, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 25; v++ {
		for s := 0; s < 25; s++ {
			if res.Dist[v][s] != ap.Dist(v, s) {
				t.Fatalf("flooding dist(%d,%d) = %d, want %d", v, s, res.Dist[v][s], ap.Dist(v, s))
			}
		}
	}
	// Pipelined flooding completes in O(m + D) rounds.
	d := graph.HopDiameter(g)
	if res.Metrics.ActiveRounds > g.M()+d+2 {
		t.Fatalf("flooding took %d rounds for m=%d D=%d", res.Metrics.ActiveRounds, g.M(), d)
	}
	if res.TableWords != 3*g.M() {
		t.Fatalf("table words = %d, want %d", res.TableWords, 3*g.M())
	}
}

func TestRandomDelayPDEStillSound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 22
	g := graph.RandomConnected(n, 0.15, 15, rng)
	ap := graph.AllPairs(g)
	p := core.APSPParams(n, 0.5)
	res, err := RandomDelayPDE(g, p, 0, rng, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if len(res.Lists[v]) != n {
			t.Fatalf("node %d detected %d of %d", v, len(res.Lists[v]), n)
		}
		for _, e := range res.Lists[v] {
			exact := float64(ap.Dist(v, int(e.Src)))
			if e.Dist < exact-1e-6 || e.Dist > 1.5*exact+1e-6 {
				t.Fatalf("random-delay estimate %f for wd=%f out of [wd, 1.5wd]", e.Dist, exact)
			}
		}
	}
}

func TestRandomDelayDeterministicPerSeed(t *testing.T) {
	n := 18
	g := graph.RandomConnected(n, 0.2, 10, rand.New(rand.NewSource(7)))
	p := core.APSPParams(n, 1)
	a, err := RandomDelayPDE(g, p, 8, rand.New(rand.NewSource(42)), congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomDelayPDE(g, p, 8, rand.New(rand.NewSource(42)), congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.ActiveRounds != b.ActiveRounds {
		t.Fatal("same seed must reproduce the run exactly")
	}
}
