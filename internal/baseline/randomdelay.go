package baseline

import (
	"math/rand"

	"pde/internal/congest"
	"pde/internal/core"
	"pde/internal/detection"
	"pde/internal/graph"
)

// RandomDelayPDE runs the same rounding reduction as the paper's PDE, but
// schedules announcements by random per-source delays — the randomized
// technique of Nanongkai [14] that Theorem 4.1 derandomizes. Delays are
// drawn uniformly from [0, maxDelay); maxDelay defaults to |S|, matching
// the O(|S|) delay range of [14]. The comparison of interest is rounds
// and messages against the deterministic lexicographic rule, plus the
// variance across seeds that the deterministic algorithm eliminates.
func RandomDelayPDE(g *graph.Graph, p core.Params, maxDelay int, rng *rand.Rand, cfg congest.Config) (*core.Result, error) {
	if maxDelay <= 0 {
		for _, s := range p.IsSource {
			if s {
				maxDelay++
			}
		}
		if maxDelay == 0 {
			maxDelay = 1
		}
	}
	delays := make([]int32, g.N())
	for v := range delays {
		if p.IsSource[v] {
			delays[v] = int32(rng.Intn(maxDelay))
		}
	}
	p.Scheduling = detection.Priority
	p.Delays = delays
	// Delayed waves may finish up to maxDelay rounds later than the
	// deterministic schedule; widen every instance's budget accordingly.
	p.ExtraRounds += maxDelay
	return core.Run(g, p, cfg)
}
