// Package baseline implements the comparison algorithms the paper measures
// against: exact weighted (S, h, σ)-detection in σ·h rounds (the bound the
// Figure 1 gadget shows optimal), pipelined Bellman–Ford APSP, topology
// flooding with local Dijkstra (the OSPF approach of §1), and the
// random-delay randomized scheduling of Nanongkai [14] that Theorem 4.1
// derandomizes.
package baseline

import (
	"fmt"
	"math/bits"
	"sort"

	"pde/internal/congest"
	"pde/internal/graph"
)

// WEntry is one exactly-detected source: Dist is the h-hop-bounded
// weighted distance wd_h(v, Src).
type WEntry struct {
	Dist graph.Weight
	Src  int32
	Via  int32
}

// ExactParams configures exact (S, h, σ)-detection under h-hop distances,
// the problem variant the paper's §1 notes is solvable in σ·h rounds and,
// by Figure 1, no faster in general.
type ExactParams struct {
	IsSource []bool
	H        int
	Sigma    int
	// ExtraRounds extends the σ·h + 1 budget.
	ExtraRounds int
	// Probe, when non-nil, runs after every round with a read-only view
	// of the current lists; returning true stops the run. Experiments use
	// it to find the first round at which the output is already correct
	// (the Ω(hσ) quantity on the Figure 1 gadget).
	Probe func(round int, list func(v int) []WEntry) bool
}

// ExactResult is the output of ExactDetect.
type ExactResult struct {
	Lists   [][]WEntry
	Budget  int
	Metrics *congest.Metrics
}

// Lookup returns v's entry for s, if present.
func (r *ExactResult) Lookup(v int, s int32) (WEntry, bool) {
	for _, e := range r.Lists[v] {
		if e.Src == s {
			return e, true
		}
	}
	return WEntry{}, false
}

// wMsg carries an exact (distance, source) pair.
type wMsg struct {
	dist graph.Weight
	src  int32
}

func (m wMsg) Bits() int { return 4 + bits.Len64(uint64(m.dist)) + bits.Len32(uint32(m.src)) }

// exactProc runs the iterated top-σ exchange: h iterations of σ subrounds
// each. At the start of an iteration each node snapshots its current list;
// during subround j it broadcasts the j-th snapshot entry. An entry thus
// advances exactly one hop per iteration, so after iteration t lists hold
// the exact top-σ of t-hop-bounded distances (the crowd-out argument
// guarantees top-σ composes hop by hop).
type exactProc struct {
	sigma int
	h     int
	wts   []graph.Weight // per port
	cur   []WEntry
	snap  []WEntry
}

func (p *exactProc) mergeOne(d graph.Weight, s int32, via int32) {
	for i := range p.cur {
		if p.cur[i].Src != s {
			continue
		}
		if p.cur[i].Dist <= d {
			return
		}
		p.cur = append(p.cur[:i], p.cur[i+1:]...)
		break
	}
	i := sort.Search(len(p.cur), func(i int) bool {
		if p.cur[i].Dist != d {
			return p.cur[i].Dist > d
		}
		return p.cur[i].Src > s
	})
	if i >= p.sigma {
		return
	}
	p.cur = append(p.cur, WEntry{})
	copy(p.cur[i+1:], p.cur[i:])
	p.cur[i] = WEntry{Dist: d, Src: s, Via: via}
	if len(p.cur) > p.sigma {
		p.cur = p.cur[:p.sigma]
	}
}

func (p *exactProc) Init(ctx *congest.Ctx) {
	p.wts = make([]graph.Weight, ctx.Degree())
	for port, e := range ctx.Neighbors() {
		p.wts[port] = e.W
	}
	ctx.WakeNext()
}

func (p *exactProc) Round(ctx *congest.Ctx) {
	for _, in := range ctx.In() {
		m := in.Msg.(wMsg)
		p.mergeOne(m.dist+p.wts[in.Port], m.src, int32(in.From))
	}
	r := ctx.Round() - 1 // 0-based subround counter
	iter := r / p.sigma
	sub := r % p.sigma
	if iter >= p.h {
		return // final merge round(s): only receive
	}
	if sub == 0 {
		p.snap = append(p.snap[:0], p.cur...)
	}
	if sub < len(p.snap) {
		e := p.snap[sub]
		ctx.Broadcast(wMsg{dist: e.Dist, src: e.Src})
	}
	ctx.WakeNext()
}

// ExactDetect solves exact (S, h, σ)-detection under h-hop distances in
// σ·h + 1 rounds. The +1 is the trailing merge of the last subround's
// messages.
func ExactDetect(g *graph.Graph, p ExactParams, cfg congest.Config) (*ExactResult, error) {
	n := g.N()
	if len(p.IsSource) != n {
		return nil, fmt.Errorf("baseline: IsSource has %d entries for %d nodes", len(p.IsSource), n)
	}
	if p.H < 0 || p.Sigma < 0 {
		return nil, fmt.Errorf("baseline: negative H=%d or Sigma=%d", p.H, p.Sigma)
	}
	if p.Sigma == 0 {
		return &ExactResult{Lists: make([][]WEntry, n), Metrics: &congest.Metrics{}}, nil
	}
	procs := make([]congest.Proc, n)
	states := make([]exactProc, n)
	for v := 0; v < n; v++ {
		states[v] = exactProc{sigma: p.Sigma, h: p.H}
		if p.IsSource[v] {
			states[v].cur = []WEntry{{Dist: 0, Src: int32(v), Via: -1}}
		}
		procs[v] = &states[v]
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = p.Sigma*p.H + 1 + p.ExtraRounds
	}
	if p.Probe != nil && cfg.Observer == nil {
		cfg.Observer = func(round int) bool {
			return p.Probe(round, func(v int) []WEntry { return states[v].cur })
		}
	}
	met, err := congest.Run(g, procs, cfg)
	if err != nil {
		return nil, err
	}
	res := &ExactResult{
		Lists:   make([][]WEntry, n),
		Budget:  cfg.MaxRounds,
		Metrics: met,
	}
	for v := 0; v < n; v++ {
		res.Lists[v] = states[v].cur
	}
	return res, nil
}

// ExactBruteForce computes the centralized answer: top-σ of h-hop-bounded
// distances, via h rounds of Bellman–Ford relaxation.
func ExactBruteForce(g *graph.Graph, p ExactParams) [][]WEntry {
	n := g.N()
	lists := make([][]WEntry, n)
	for s := 0; s < n; s++ {
		if !p.IsSource[s] {
			continue
		}
		dist := make([]graph.Weight, n)
		for v := range dist {
			dist[v] = graph.Infinity
		}
		dist[s] = 0
		for t := 0; t < p.H; t++ {
			next := make([]graph.Weight, n)
			copy(next, dist)
			for v := 0; v < n; v++ {
				if dist[v] == graph.Infinity {
					continue
				}
				for _, e := range g.Neighbors(v) {
					if nd := dist[v] + e.W; nd < next[e.To] {
						next[e.To] = nd
					}
				}
			}
			dist = next
		}
		for v := 0; v < n; v++ {
			if dist[v] < graph.Infinity {
				lists[v] = append(lists[v], WEntry{Dist: dist[v], Src: int32(s), Via: -1})
			}
		}
	}
	for v := range lists {
		sort.Slice(lists[v], func(i, j int) bool {
			if lists[v][i].Dist != lists[v][j].Dist {
				return lists[v][i].Dist < lists[v][j].Dist
			}
			return lists[v][i].Src < lists[v][j].Src
		})
		if len(lists[v]) > p.Sigma {
			lists[v] = lists[v][:p.Sigma]
		}
	}
	return lists
}
