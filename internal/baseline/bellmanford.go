package baseline

import (
	"fmt"
	"math/bits"
	"sort"

	"pde/internal/congest"
	"pde/internal/graph"
)

// BFResult is the output of the pipelined Bellman–Ford APSP baseline.
type BFResult struct {
	// Dist[v][s] is the exact distance wd(v, s) computed by node v.
	Dist [][]graph.Weight
	// Parent[v][s] is v's next hop toward s (-1 for v = s).
	Parent  [][]int32
	Metrics *congest.Metrics
}

// bfProc is one node of the pipelined distributed Bellman–Ford: it keeps a
// distance vector and announces one improved (source, distance) pair per
// round — the CONGEST-compliant pipelining of the classic RIP-style
// algorithm (§1 background). Announcement order is lexicographically
// smallest unsent, mirroring the detection substrate.
type bfProc struct {
	n      int
	wts    []graph.Weight
	dist   []graph.Weight
	parent []int32
	sent   []graph.Weight // last announced value per source
	queue  []int32        // sources with unannounced improvements, kept sorted by (dist, src)
}

func (p *bfProc) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	p.wts = make([]graph.Weight, ctx.Degree())
	for port, e := range ctx.Neighbors() {
		p.wts[port] = e.W
	}
	p.dist = make([]graph.Weight, p.n)
	p.parent = make([]int32, p.n)
	p.sent = make([]graph.Weight, p.n)
	for s := range p.dist {
		p.dist[s] = graph.Infinity
		p.parent[s] = -1
		p.sent[s] = graph.Infinity
	}
	p.dist[v] = 0
	p.enqueue(int32(v))
	p.emit(ctx)
}

func (p *bfProc) enqueue(s int32) {
	for _, q := range p.queue {
		if q == s {
			return
		}
	}
	p.queue = append(p.queue, s)
}

// pick removes and returns the queued source with the smallest
// (distance, source) key.
func (p *bfProc) pick() int32 {
	best := 0
	for i := 1; i < len(p.queue); i++ {
		a, b := p.queue[i], p.queue[best]
		if p.dist[a] < p.dist[b] || (p.dist[a] == p.dist[b] && a < b) {
			best = i
		}
	}
	s := p.queue[best]
	p.queue = append(p.queue[:best], p.queue[best+1:]...)
	return s
}

func (p *bfProc) emit(ctx *congest.Ctx) {
	for len(p.queue) > 0 {
		s := p.pick()
		if p.sent[s] <= p.dist[s] {
			continue // stale: already announced an equal or better value
		}
		p.sent[s] = p.dist[s]
		ctx.Broadcast(wMsg{dist: p.dist[s], src: s})
		break
	}
	if len(p.queue) > 0 {
		ctx.WakeNext()
	}
}

func (p *bfProc) Round(ctx *congest.Ctx) {
	for _, in := range ctx.In() {
		m := in.Msg.(wMsg)
		if nd := m.dist + p.wts[in.Port]; nd < p.dist[m.src] {
			p.dist[m.src] = nd
			p.parent[m.src] = int32(in.From)
			p.enqueue(m.src)
		}
	}
	p.emit(ctx)
}

// BellmanFordAPSP computes exact APSP with the pipelined Bellman–Ford
// baseline, running to quiescence. Its round count is the Θ(n)–Θ(n·SPD)
// cost the paper's algorithms undercut approximately.
func BellmanFordAPSP(g *graph.Graph, cfg congest.Config) (*BFResult, error) {
	n := g.N()
	procs := make([]congest.Proc, n)
	states := make([]bfProc, n)
	for v := 0; v < n; v++ {
		states[v] = bfProc{n: n}
		procs[v] = &states[v]
	}
	met, err := congest.Run(g, procs, cfg)
	if err != nil {
		return nil, err
	}
	res := &BFResult{
		Dist:    make([][]graph.Weight, n),
		Parent:  make([][]int32, n),
		Metrics: met,
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = states[v].dist
		res.Parent[v] = states[v].parent
	}
	return res, nil
}

// FloodResult is the output of the topology-flooding baseline.
type FloodResult struct {
	// Dist[v][s] is the exact distance computed locally by v after it
	// learned the full topology.
	Dist [][]graph.Weight
	// TableWords is the per-node storage in words: Θ(m), the cost OSPF
	// pays that compact schemes avoid.
	TableWords int
	Metrics    *congest.Metrics
}

// edgeMsg describes one edge of the topology being flooded. The id is
// local bookkeeping derivable from the endpoints; only the endpoints and
// weight are charged on the wire.
type edgeMsg struct {
	id   int32
	u, v int32
	w    graph.Weight
}

func (m edgeMsg) Bits() int {
	return 4 + bits.Len32(uint32(m.u)) + bits.Len32(uint32(m.v)) + bits.Len64(uint64(m.w))
}

type floodProc struct {
	m     int
	known map[int32]edgeMsg
	queue []int32 // edge ids not yet forwarded, FIFO
}

func (p *floodProc) Init(ctx *congest.Ctx) {
	p.known = make(map[int32]edgeMsg)
	v := int32(ctx.Node())
	for _, e := range ctx.Neighbors() {
		if v < int32(e.To) {
			msg := edgeMsg{id: e.ID, u: v, v: int32(e.To), w: e.W}
			p.known[e.ID] = msg
			p.queue = append(p.queue, e.ID)
		}
	}
	sort.Slice(p.queue, func(i, j int) bool { return p.queue[i] < p.queue[j] })
	p.emit(ctx)
}

func (p *floodProc) emit(ctx *congest.Ctx) {
	if len(p.queue) > 0 {
		id := p.queue[0]
		p.queue = p.queue[1:]
		ctx.Broadcast(p.known[id])
	}
	if len(p.queue) > 0 {
		ctx.WakeNext()
	}
}

func (p *floodProc) Round(ctx *congest.Ctx) {
	for _, in := range ctx.In() {
		m := in.Msg.(edgeMsg)
		if _, ok := p.known[m.id]; !ok {
			p.known[m.id] = m
			p.queue = append(p.queue, m.id)
		}
	}
	p.emit(ctx)
}

// FloodingAPSP floods the complete topology to every node (pipelined, one
// edge record per edge per round) and solves APSP locally with Dijkstra:
// the "collect everything then run a centralized algorithm" approach the
// paper contrasts with (§1). Rounds are Θ(m + D); storage is Θ(m) words
// per node.
func FloodingAPSP(g *graph.Graph, cfg congest.Config) (*FloodResult, error) {
	n := g.N()
	procs := make([]congest.Proc, n)
	states := make([]floodProc, n)
	for v := 0; v < n; v++ {
		states[v] = floodProc{m: g.M()}
		procs[v] = &states[v]
	}
	met, err := congest.Run(g, procs, cfg)
	if err != nil {
		return nil, err
	}
	res := &FloodResult{
		Dist:       make([][]graph.Weight, n),
		TableWords: 3 * g.M(),
		Metrics:    met,
	}
	// Every edge record originates at its unique owner and is forwarded
	// verbatim, so two nodes knowing the same edge id know the same edge.
	// Once each node is verified to know all m ids, the n local topologies
	// are identical and one rebuild serves every node's Dijkstra — the
	// per-node O(m) reconstruction the real protocol pays is pure
	// simulation overhead here, not CONGEST cost.
	for v := 0; v < n; v++ {
		if len(states[v].known) != g.M() {
			return nil, fmt.Errorf("baseline: node %d learned %d of %d edges", v, len(states[v].known), g.M())
		}
	}
	if n == 0 {
		return res, nil
	}
	b := graph.NewBuilder(n)
	ids := make([]int32, 0, len(states[0].known))
	for id := range states[0].known {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := states[0].known[id]
		b.AddEdge(int(e.u), int(e.v), e.w)
	}
	local, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("baseline: rebuilt bad topology: %w", err)
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = graph.Dijkstra(local, v).Dist
	}
	return res, nil
}
