package pde

import (
	"testing"

	"pde/internal/bench"
)

// One benchmark per reproduced table/figure. Each iteration regenerates
// the experiment's table at Quick scale; cmd/pde-experiments produces the
// Full-scale tables recorded in EXPERIMENTS.md.

func BenchmarkE1APSPTheorem41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E1APSP(bench.Quick)
	}
}

func BenchmarkE1bAPSPBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E1Baselines(bench.Quick)
	}
}

func BenchmarkE2PDESweepCorollary35(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E2PDESweep(bench.Quick)
	}
}

func BenchmarkE3Figure1LowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E3Figure1(bench.Quick)
	}
}

func BenchmarkE4MessageCapLemma34(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E4Messages(bench.Quick)
	}
}

func BenchmarkE5RTCTheorem45(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E5RTC(bench.Quick)
	}
}

func BenchmarkE6CompactHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E6Compact(bench.Quick)
	}
}

func BenchmarkE7TreeStatsLemma44(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E7Trees(bench.Quick)
	}
}

func BenchmarkE8SpannerBaswanaSen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E8Spanner(bench.Quick)
	}
}

func BenchmarkE9SchedulingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E9Ablation(bench.Quick)
	}
}
