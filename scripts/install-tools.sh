#!/usr/bin/env sh
# Installs the external lint/scan tools at their pinned versions.
#
# This is the single source of truth for tool versions: CI jobs and local
# runs both install through this script, so they can never disagree on
# what "staticcheck passes" means. The module itself stays zero-dependency
# — a tools.go + go.mod tool dependency would drag honnef.co/go/tools and
# golang.org/x/* into go.mod/go.sum, which this repo deliberately avoids
# (see docs/analysis.md) — so the pin lives here instead.
#
# Usage: scripts/install-tools.sh [staticcheck|govulncheck|all]
set -eu

STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

want=${1:-all}

case "$want" in
staticcheck | all)
	go install "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}"
	;;
esac
case "$want" in
govulncheck | all)
	go install "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}"
	;;
esac
