module pde

go 1.24
