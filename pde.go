// Package pde is a from-scratch Go implementation of "Fast Partial
// Distance Estimation and Applications" (Lenzen & Patt-Shamir, PODC 2015):
// partial distance estimation (PDE) in the CONGEST model, with its
// applications to (1+ε)-approximate all-pairs shortest paths (Theorem 4.1),
// routing-table construction with relabeling (Theorem 4.5), and compact
// Thorup–Zwick routing hierarchies (§4.3), together with every substrate
// the paper relies on (source detection, Baswana–Sen spanners, tree
// labeling) and the baselines it is measured against.
//
// The package is a facade: algorithms live in internal packages and are
// re-exported here as aliases, so this file documents the intended entry
// points.
//
// The front door for anything servable is internal/scheme: one registry
// holding the three distance/routing schemes — "oracle" (compiled CSR
// tables), "rtc" (Theorem 4.5 routing) and "compact" (§4.3 hierarchy) —
// behind one Spec and one Instance interface (estimates, next hops,
// routes, plus table/label/stretch accounting). BuildScheme builds any of
// them; the pde-serve daemon serves any of them, side by side, through
// the same wire protocol.
//
// Quick start:
//
//	g := pde.RandomGraph(200, 0.05, 100, 1) // n, density, max weight, seed
//	res, err := pde.ApproxAPSP(g, 0.5, pde.Config{})
//	// res.Lists[v] holds (1.5)-approximate distances from v to all nodes;
//	// pde.NewRouter(g, res) routes along stretch-(1+ε) paths.
package pde

import (
	"io"
	"math/rand"

	"pde/internal/baseline"
	"pde/internal/compact"
	"pde/internal/congest"
	"pde/internal/core"
	"pde/internal/detection"
	"pde/internal/graph"
	"pde/internal/oracle"
	"pde/internal/rtc"
	"pde/internal/scheme"
	"pde/internal/spanner"
	"pde/internal/treelabel"
)

// Re-exported substrate types. See the internal package docs for details.
type (
	// Graph is a weighted undirected graph on nodes 0..n-1.
	Graph = graph.Graph
	// Builder constructs Graphs.
	Builder = graph.Builder
	// Weight is an edge weight / exact distance.
	Weight = graph.Weight
	// APSPGroundTruth is exact all-pairs shortest-path data.
	APSPGroundTruth = graph.APSP

	// Config controls a CONGEST execution (bandwidth, parallelism).
	Config = congest.Config
	// Metrics reports rounds, messages and bits of an execution.
	Metrics = congest.Metrics

	// EstimationParams configures a PDE instance (Definition 2.2).
	EstimationParams = core.Params
	// Estimation is a PDE result: estimates, tables and cost accounting.
	Estimation = core.Result
	// Estimate is one (source, distance, next hop) table entry.
	Estimate = core.Estimate
	// Router is the Corollary 3.5 stretch-(1+ε) stateless router.
	Router = core.Router

	// Oracle is a flat, immutable index compiled from an Estimation: it
	// answers the same Estimate/Lookup/NextHop queries as the result's
	// scan paths in O(log σ) per call and is safe for concurrent readers.
	Oracle = oracle.Oracle
	// OracleQuery / OracleAnswer are the batch-serving request/response
	// pair of Oracle.AnswerAll and Oracle.AnswerParallel.
	OracleQuery  = oracle.Query
	OracleAnswer = oracle.Answer

	// DetectionParams configures raw unweighted/virtual source detection.
	DetectionParams = detection.Params
	// DetectionResult is a source-detection output.
	DetectionResult = detection.Result

	// RoutingParams configures Theorem 4.5 routing-table construction.
	RoutingParams = rtc.Params
	// RoutingScheme is a built Theorem 4.5 scheme.
	RoutingScheme = rtc.Scheme

	// CompactParams configures the §4.3 compact hierarchy.
	CompactParams = compact.Params
	// CompactScheme is a built §4.3 hierarchy.
	CompactScheme = compact.Scheme

	// Spanner is a Baswana–Sen (2k−1)-spanner.
	Spanner = spanner.Result
	// TreeLabeling is a Thorup–Zwick interval-labeled tree.
	TreeLabeling = treelabel.Labeling

	// SchemeSpec is the unified build recipe of the scheme registry
	// (internal/scheme): topology + PDE knobs + scheme selector.
	SchemeSpec = scheme.Spec
	// SchemeInstance is a built, immutable, concurrently-servable scheme.
	SchemeInstance = scheme.Instance
	// SchemeAccounting is the per-scheme table/label/stretch cost sheet.
	SchemeAccounting = scheme.Accounting
)

// Compact strategies (Corollary 4.14).
const (
	StrategyNone      = compact.StrategyNone
	StrategySimulate  = compact.StrategySimulate
	StrategyBroadcast = compact.StrategyBroadcast
)

// NewBuilder returns a graph builder for n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// RandomGraph generates a connected Erdős–Rényi-style graph.
func RandomGraph(n int, p float64, maxW Weight, seed int64) *Graph {
	return graph.RandomConnected(n, p, maxW, rand.New(rand.NewSource(seed)))
}

// GeometricGraph generates a connected random geometric graph.
func GeometricGraph(n int, radius float64, maxW Weight, seed int64) *Graph {
	return graph.Geometric(n, radius, maxW, rand.New(rand.NewSource(seed)))
}

// InternetGraph generates an ISP-like hierarchical topology.
func InternetGraph(n int, maxW Weight, seed int64) *Graph {
	return graph.Internet(n, maxW, rand.New(rand.NewSource(seed)))
}

// Figure1Gadget builds the paper's lower-bound construction.
func Figure1Gadget(h, sigma int) *graph.Figure1 { return graph.NewFigure1(h, sigma) }

// GroundTruth computes exact APSP centrally (for verification).
func GroundTruth(g *Graph) *APSPGroundTruth { return graph.AllPairs(g) }

// RunEstimation runs (1+ε)-approximate (S, h, σ)-estimation (Corollary 3.5).
func RunEstimation(g *Graph, p EstimationParams, cfg Config) (*Estimation, error) {
	return core.Run(g, p, cfg)
}

// ApproxAPSP runs the deterministic (1+ε)-approximate APSP of Theorem 4.1:
// S = V, h = σ = n, completing in O(ε⁻² n log n) CONGEST rounds.
func ApproxAPSP(g *Graph, eps float64, cfg Config) (*Estimation, error) {
	return core.Run(g, core.APSPParams(g.N(), eps), cfg)
}

// NewRouter wraps an estimation result for stretch-(1+ε) routing. It is a
// free wrapper: hop decisions use the result's scan path, which is the
// right trade for routing a few packets. For heavy routing or query
// traffic, compile the tables once and route from the index:
// CompileOracle(res).Router(g, res).
func NewRouter(g *Graph, res *Estimation) *Router { return core.NewRouter(g, res) }

// CompileOracle flattens an estimation result into an indexed, immutable
// distance oracle for heavy query traffic (§2.4: distance queries answered
// from local tables). To also route from the same index without compiling
// twice, use the oracle's Router method instead of NewRouter.
//
// To serve oracle traffic over the network instead of in-process, see
// internal/server and cmd/pde-serve: a long-lived daemon that holds one
// or more scenarios as independently built oracle shards behind
// /v1/estimate, /v1/nexthop and /v1/route (JSON or the binary batch
// codec), coalesces concurrent requests into micro-batches, and
// hot-swaps a shard's tables via /v1/rebuild without dropping or tearing
// a single query — every response names the build fingerprint of the
// table generation that answered it.
func CompileOracle(res *Estimation) *Oracle { return oracle.Compile(res) }

// BuildScheme builds any registered scheme — "oracle", "rtc" or
// "compact" — from one Spec through the unified registry
// (internal/scheme). The returned instance answers estimates, next hops
// and routes from immutable tables, reports its table/label/stretch
// accounting, and is exactly what a pde-serve shard with the same spec
// serves: same answers, same fingerprint.
func BuildScheme(sp SchemeSpec) (SchemeInstance, error) { return scheme.Build(sp) }

// SchemeNames lists the registered schemes.
func SchemeNames() []string { return scheme.Names() }

// BuildRoutingScheme constructs Theorem 4.5 routing tables: stretch
// 6k−1+o(1), O(log n)-bit labels, Õ(n^{1/2+1/(4k)} + D) rounds. For the
// servable, registry-managed form of the same tables use
// BuildScheme(SchemeSpec{Scheme: "rtc", ...}).
func BuildRoutingScheme(g *Graph, p RoutingParams, cfg Config) (*RoutingScheme, error) {
	return rtc.Build(g, p, cfg)
}

// BuildCompactScheme constructs the §4.3 hierarchy: stretch 4k−3+o(1),
// tables Õ(n^{1/k}), labels O(k log n) bits.
func BuildCompactScheme(g *Graph, p CompactParams, cfg Config) (*CompactScheme, error) {
	return compact.Build(g, p, cfg)
}

// BuildSpanner constructs a Baswana–Sen (2k−1)-spanner.
func BuildSpanner(g *Graph, k int, seed int64) (*Spanner, error) {
	return spanner.BaswanaSen(g, k, rand.New(rand.NewSource(seed)))
}

// BellmanFordAPSP runs the exact pipelined Bellman–Ford baseline.
func BellmanFordAPSP(g *Graph, cfg Config) (*baseline.BFResult, error) {
	return baseline.BellmanFordAPSP(g, cfg)
}

// FloodingAPSP runs the exact topology-flooding (OSPF-style) baseline.
func FloodingAPSP(g *Graph, cfg Config) (*baseline.FloodResult, error) {
	return baseline.FloodingAPSP(g, cfg)
}

// ExactDetection runs the σ·h-round exact (S, h, σ)-detection baseline
// that Figure 1 shows is worst-case optimal.
func ExactDetection(g *Graph, p baseline.ExactParams, cfg Config) (*baseline.ExactResult, error) {
	return baseline.ExactDetect(g, p, cfg)
}

// ReadGraph parses a graph in the repository's text format (see
// Graph.WriteTo): a "pde-graph v1" header, node/edge counts, and one
// "u v w" line per edge.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// MakeNameIndependent converts a Theorem 4.5 scheme into the
// name-independent variant of §2.3 by accounting a full label-directory
// broadcast; routing is then addressed by plain node ids.
func MakeNameIndependent(sch *RoutingScheme, hopDiameter int) (*rtc.NameIndependent, error) {
	return rtc.MakeNameIndependent(sch, hopDiameter)
}
