// Command pde-serve is the long-lived distance-query daemon: it builds
// one or more graph scenarios into independent oracle shards
// (internal/server) and serves estimate / next-hop / route traffic plus
// aggregate set-distance queries (/v1/setdist: Chamfer, Hausdorff and
// mean-min between two member sets, answered by the pruned
// internal/setdist engine) over HTTP, with admin hot-swap rebuilds,
// incremental edge-churn updates (/v1/update, delta-patched tables with
// a -damage-threshold rebuild cutoff), micro-batched oracle dispatch, a
// route LRU, and per-shard stats.
//
// Usage:
//
//	pde-serve [-addr :7475]
//	          [-wire-addr :7476] [-wire-accept-loops 2]
//	          [-pprof-addr localhost:6060]
//	          [-scheme oracle|rtc|compact]
//	          [-topology random] [-n 256] [-eps 0.5] [-maxw 16]
//	          [-h 0] [-sigma 0] [-seed 1] [-build-workers 0]
//	          [-k 0] [-strategy none] [-l0 0] [-sample-prob 0]
//	          [-shards '{"name": {"scheme": "...", "topology": "...", ...}}']
//	          [-max-batch 65536] [-coalesce-limit 16384]
//	          [-coalesce-wait 0] [-workers 0] [-route-cache 4096]
//	          [-damage-threshold 0]
//
// With -shards, the JSON object maps shard names to full specs
// (internal/scheme.Spec: topology + PDE knobs + scheme selector) and the
// single-shard convenience flags are ignored; otherwise one shard named
// "main" is built from the convenience flags (which mirror pde-query's:
// h = sigma = 0 means full APSP). Every scheme — the compiled oracle,
// Theorem 4.5 rtc tables, the §4.3 compact hierarchy — serves the same
// wire protocol; a daemon can hold one shard per scheme side by side.
//
// With -wire-addr the daemon additionally serves the PDE2 raw-TCP
// framed protocol (internal/wire) on that address against the same
// shards: persistent connections, pipelined frames, zero-allocation
// steady state. Clients discover the endpoint from /v1/stats
// (wire_addr). -pprof-addr exposes net/http/pprof on a separate
// listener for live profiling (see docs/serving.md).
//
// Endpoints, wire formats, and hot-swap semantics are documented in
// docs/serving.md and internal/server. The daemon exits gracefully on
// SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pde/internal/graph"
	"pde/internal/scheme"
	"pde/internal/server"
	"pde/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7475", "HTTP listen address")
	wireAddr := flag.String("wire-addr", "", "PDE2 raw-TCP listen address (empty = wire protocol disabled)")
	wireAcceptLoops := flag.Int("wire-accept-loops", 0, "PDE2 accept-loop goroutines sharing the listener (0 = default 2)")
	pprofAddr := flag.String("pprof-addr", "", "net/http/pprof listen address, e.g. localhost:6060 (empty = disabled)")
	schemeName := flag.String("scheme", "oracle", scheme.List())
	topology := flag.String("topology", "random", graph.GeneratorList())
	n := flag.Int("n", 256, "number of nodes")
	eps := flag.Float64("eps", 0.5, "PDE approximation slack")
	maxW := flag.Int64("maxw", 16, "maximum edge weight")
	h := flag.Int("h", 0, "hop bound (0 = APSP)")
	sigma := flag.Int("sigma", 0, "list size (0 = APSP)")
	seed := flag.Int64("seed", 1, "graph generator seed")
	buildWorkers := flag.Int("build-workers", 0, "parallel table-build pool width (0 = GOMAXPROCS)")
	k := flag.Int("k", 0, "rtc/compact stretch parameter (0 = scheme default)")
	strategy := flag.String("strategy", "", "compact truncation strategy: none | simulate | broadcast")
	l0 := flag.Int("l0", 0, "compact truncation level (0 = none)")
	sampleProb := flag.Float64("sample-prob", 0, "rtc skeleton sampling probability override (0 = paper's)")
	shardsJSON := flag.String("shards", "", `multi-shard spec: {"name": {"topology": ..., "n": ..., "eps": ..., ...}}`)
	maxBatch := flag.Int("max-batch", 0, "largest query batch one request may carry (0 = default 65536)")
	coalesceLimit := flag.Int("coalesce-limit", 0, "point lookups per micro-batch flush (0 = default 16384)")
	coalesceWait := flag.Duration("coalesce-wait", 0, "hold a lone request open this long for coalescing (0 = opportunistic)")
	workers := flag.Int("workers", 0, "oracle fan-out per flush (0 = GOMAXPROCS)")
	routeCache := flag.Int("route-cache", 0, "per-shard route LRU capacity (0 = default 4096, negative disables)")
	damageThreshold := flag.Float64("damage-threshold", 0, "/v1/update delta-vs-rebuild cutoff: affected-instance fraction above which an update rebuilds from scratch (0 = scheme default)")
	flag.Parse()

	specs := map[string]server.Spec{}
	if *shardsJSON != "" {
		if err := json.Unmarshal([]byte(*shardsJSON), &specs); err != nil {
			fmt.Fprintf(os.Stderr, "pde-serve: parsing -shards: %v\n", err)
			os.Exit(2)
		}
		if len(specs) == 0 {
			fmt.Fprintln(os.Stderr, "pde-serve: -shards names no shards")
			os.Exit(2)
		}
	} else {
		specs["main"] = server.Spec{
			Scheme: *schemeName, Topology: *topology, N: *n, Eps: *eps, MaxW: *maxW,
			H: *h, Sigma: *sigma, Seed: *seed, BuildWorkers: *buildWorkers,
			K: *k, Strategy: *strategy, L0: *l0, SampleProb: *sampleProb,
		}
	}
	for name, sp := range specs {
		if err := sp.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "pde-serve: shard %q: %v\n", name, err)
			os.Exit(2)
		}
	}

	cfg := server.Config{
		MaxBatch:        *maxBatch,
		CoalesceLimit:   *coalesceLimit,
		CoalesceWait:    *coalesceWait,
		Workers:         *workers,
		RouteCacheSize:  *routeCache,
		DamageThreshold: *damageThreshold,
	}
	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "pde-serve: building %d shard(s)...\n", len(specs))
	srv, err := server.New(specs, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pde-serve: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	for _, name := range srv.Shards() {
		fp, _ := srv.Fingerprint(name)
		fmt.Fprintf(os.Stderr, "pde-serve: shard %q ready (fingerprint %s)\n", name, fp)
	}
	fmt.Fprintf(os.Stderr, "pde-serve: built in %.1fs, listening on %s\n", time.Since(t0).Seconds(), *addr)

	if *pprofAddr != "" {
		// The main handler never sees these routes: pprof registers on
		// http.DefaultServeMux and only this side listener serves it.
		go func() {
			fmt.Fprintf(os.Stderr, "pde-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pde-serve: pprof listener: %v\n", err)
			}
		}()
	}

	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pde-serve: wire listen: %v\n", err)
			os.Exit(1)
		}
		ws := wire.Serve(ln, srv, wire.Config{
			MaxBatch:    *maxBatch,
			AcceptLoops: *wireAcceptLoops,
		})
		defer ws.Close()
		srv.SetWireAddr(ws.Addr())
		fmt.Fprintf(os.Stderr, "pde-serve: PDE2 wire protocol on %s\n", ws.Addr())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "pde-serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "pde-serve: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "pde-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
