// Command pde-apsp runs the deterministic (1+ε)-approximate APSP of
// Theorem 4.1 on a generated topology and reports rounds, messages and
// measured stretch against exact ground truth and the exact baselines.
//
// Usage:
//
//	pde-apsp [-n 80] [-eps 0.5] [-maxw 32] [-topology random|geometric|internet] [-seed 1] [-baselines]
package main

import (
	"flag"
	"fmt"
	"os"

	"pde"
)

func main() {
	n := flag.Int("n", 80, "number of nodes")
	eps := flag.Float64("eps", 0.5, "approximation slack ε")
	maxw := flag.Int64("maxw", 32, "maximum edge weight")
	topology := flag.String("topology", "random", "random | geometric | internet")
	seed := flag.Int64("seed", 1, "generator seed")
	baselines := flag.Bool("baselines", false, "also run Bellman-Ford and flooding")
	flag.Parse()

	var g *pde.Graph
	switch *topology {
	case "random":
		g = pde.RandomGraph(*n, 6.0/float64(*n), *maxw, *seed)
	case "geometric":
		g = pde.GeometricGraph(*n, 0.25, *maxw, *seed)
	case "internet":
		g = pde.InternetGraph(*n, *maxw, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}
	fmt.Printf("graph: %s n=%d m=%d maxW=%d\n", *topology, g.N(), g.M(), g.MaxWeight())

	res, err := pde.ApproxAPSP(g, *eps, pde.Config{Parallel: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	truth := pde.GroundTruth(g)
	worst, sum, cnt := 1.0, 0.0, 0
	for v := 0; v < g.N(); v++ {
		for _, e := range res.Lists[v] {
			exact := truth.Dist(v, int(e.Src))
			if exact == 0 {
				continue
			}
			s := e.Dist / float64(exact)
			sum += s
			cnt++
			if s > worst {
				worst = s
			}
		}
	}
	fmt.Printf("PDE APSP:   rounds=%d (budget) / %d (active)  messages=%d  instances=%d\n",
		res.BudgetRounds, res.ActiveRounds, res.Messages, len(res.Instances))
	fmt.Printf("stretch:    max=%.4f mean=%.4f bound=%.2f\n", worst, sum/float64(cnt), 1+*eps)

	if *baselines {
		bf, err := pde.BellmanFordAPSP(g, pde.Config{Parallel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("BellmanFord: rounds=%d messages=%d (exact)\n", bf.Metrics.ActiveRounds, bf.Metrics.Messages)
		fl, err := pde.FloodingAPSP(g, pde.Config{Parallel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Flooding:    rounds=%d messages=%d table=%d words (exact)\n",
			fl.Metrics.ActiveRounds, fl.Metrics.Messages, fl.TableWords)
	}
}
