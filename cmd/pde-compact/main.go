// Command pde-compact builds the §4.3 compact routing hierarchy through
// the unified scheme registry (internal/scheme, scheme "compact") and
// reports the table-size/stretch trade-off, including the truncated
// strategies of Theorem 4.13 (simulate) and Corollary 4.14 (broadcast).
// It is a thin wrapper: everything it prints comes from the same Instance
// the pde-serve daemon would serve.
//
// Usage:
//
//	pde-compact [-topology random] [-n 50] [-k 3] [-l0 0]
//	            [-strategy none|simulate|broadcast] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"pde/internal/graph"
	"pde/internal/scheme"
)

func main() {
	topology := flag.String("topology", "random", graph.GeneratorList())
	n := flag.Int("n", 50, "number of nodes")
	k := flag.Int("k", 3, "levels (stretch <= 4k-3)")
	l0 := flag.Int("l0", 0, "truncation level (0 = none)")
	strategy := flag.String("strategy", "none", "none | simulate | broadcast")
	maxW := flag.Int64("maxw", 12, "maximum edge weight")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	inst, err := scheme.Build(scheme.Spec{
		Scheme: "compact", Topology: *topology, N: *n, Eps: 0.25, MaxW: *maxW,
		Seed: *seed, K: *k, Strategy: *strategy, L0: *l0,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ci := inst.(*scheme.CompactInstance)
	sch, g := ci.Sch, inst.Graph()
	fmt.Printf("graph: %s n=%d m=%d   fingerprint=%016x\n", *topology, g.N(), g.M(), inst.Fingerprint())
	for l := 0; l < *k; l++ {
		fmt.Printf("level %d: |S_%d| = %d\n", l, l, len(sch.Levels[l]))
	}
	fmt.Printf("rounds: direct=%d skeleton=%d truncated=%d tree-labeling=%d total=%d\n",
		sch.Rounds.DirectLevels, sch.Rounds.SkeletonPDE, sch.Rounds.TruncatedSim,
		sch.Rounds.TreeLabeling, sch.Rounds.Total)

	a := inst.Accounting()
	fmt.Printf("stretch: max=%.3f mean=%.3f over %d probe routes, bound(4k-3)=%.0f\n",
		a.MeasuredStretch, a.MeanStretch, a.ProbeRoutes, a.StretchBound)
	fmt.Printf("tables: %d words incl. %d shared (%.1f KiB)   labels: max %d bits, mean %.1f (O(k log n))\n",
		a.Entries, sch.SharedWords(), float64(a.TableBytes)/1024, a.MaxLabelBits, a.AvgLabelBits)
}
