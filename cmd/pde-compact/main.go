// Command pde-compact builds the §4.3 compact routing hierarchy and
// reports the table-size/stretch trade-off across k, including the
// truncated strategies of Theorem 4.13 (simulate) and Corollary 4.14
// (broadcast).
//
// Usage:
//
//	pde-compact [-n 50] [-k 3] [-l0 0] [-strategy none|simulate|broadcast] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"pde"
)

func main() {
	n := flag.Int("n", 50, "number of nodes")
	k := flag.Int("k", 3, "levels (stretch <= 4k-3)")
	l0 := flag.Int("l0", 0, "truncation level (0 = none)")
	strategy := flag.String("strategy", "none", "none | simulate | broadcast")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	strat := pde.StrategyNone
	switch *strategy {
	case "none":
	case "simulate":
		strat = pde.StrategySimulate
	case "broadcast":
		strat = pde.StrategyBroadcast
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	g := pde.RandomGraph(*n, 6.0/float64(*n), 12, *seed)
	sch, err := pde.BuildCompactScheme(g, pde.CompactParams{
		K: *k, Epsilon: 0.25, C: 1.5, L0: *l0, Strategy: strat, Seed: *seed,
	}, pde.Config{Parallel: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for l := 0; l < *k; l++ {
		fmt.Printf("level %d: |S_%d| = %d\n", l, l, len(sch.Levels[l]))
	}
	fmt.Printf("rounds: direct=%d skeleton=%d truncated=%d tree-labeling=%d total=%d\n",
		sch.Rounds.DirectLevels, sch.Rounds.SkeletonPDE, sch.Rounds.TruncatedSim,
		sch.Rounds.TreeLabeling, sch.Rounds.Total)

	truth := pde.GroundTruth(g)
	worst, sum, cnt := 0.0, 0.0, 0
	maxWords, sumWords, maxBits := 0, 0, 0
	for v := 0; v < g.N(); v++ {
		w := sch.TableWords(v)
		sumWords += w
		if w > maxWords {
			maxWords = w
		}
		if b := sch.LabelBits(v); b > maxBits {
			maxBits = b
		}
		for u := 0; u < g.N(); u++ {
			if v == u {
				continue
			}
			rt, err := sch.Route(v, sch.Labels[u])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			s := rt.Stretch(truth.Dist(v, u))
			sum += s
			cnt++
			if s > worst {
				worst = s
			}
		}
	}
	fmt.Printf("stretch: max=%.3f mean=%.3f bound(4k-3)=%d\n", worst, sum/float64(cnt), 4**k-3)
	fmt.Printf("tables: mean=%.1f max=%d words; shared (global) state=%d words\n",
		float64(sumWords)/float64(g.N()), maxWords, sch.SharedWords())
	fmt.Printf("labels: max %d bits (O(k log n))\n", maxBits)
}
