// Command pde-rtc builds Theorem 4.5 routing tables through the unified
// scheme registry (internal/scheme, scheme "rtc") and reports the
// construction's round breakdown, table/label accounting and measured
// stretch. It is a thin wrapper: everything it prints comes from the same
// Instance the pde-serve daemon would serve.
//
// Usage:
//
//	pde-rtc [-topology random] [-n 60] [-k 2] [-eps 0.25] [-maxw 16]
//	        [-p 0.25] [-seed 1] [-trees]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pde/internal/graph"
	"pde/internal/scheme"
)

func main() {
	topology := flag.String("topology", "random", graph.GeneratorList())
	n := flag.Int("n", 60, "number of nodes")
	k := flag.Int("k", 2, "stretch parameter (stretch <= 6k-1)")
	eps := flag.Float64("eps", 0.25, "PDE slack")
	maxW := flag.Int64("maxw", 16, "maximum edge weight")
	prob := flag.Float64("p", 0.25, "skeleton sampling probability (0 = paper's n^{-1/2-1/(4k)})")
	seed := flag.Int64("seed", 1, "seed")
	trees := flag.Bool("trees", false, "print Lemma 4.4 tree statistics")
	flag.Parse()

	inst, err := scheme.Build(scheme.Spec{
		Scheme: "rtc", Topology: *topology, N: *n, Eps: *eps, MaxW: *maxW,
		Seed: *seed, K: *k, SampleProb: *prob,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ri := inst.(*scheme.RTCInstance)
	sch, g := ri.Sch, inst.Graph()
	fmt.Printf("graph: %s n=%d m=%d   skeleton |S|=%d   spanner edges=%d   fingerprint=%016x\n",
		*topology, g.N(), g.M(), len(sch.Skeleton), len(sch.Span.Edges), inst.Fingerprint())
	fmt.Printf("rounds: short-range=%d skeleton=%d spanner=%d tree-labeling=%d total=%d\n",
		sch.Rounds.ShortRangePDE, sch.Rounds.SkeletonPDE, sch.Rounds.Spanner,
		sch.Rounds.TreeLabeling, sch.Rounds.Total)

	a := inst.Accounting()
	fmt.Printf("stretch: max=%.3f mean=%.3f over %d probe routes, bound(6k-1)=%.0f\n",
		a.MeasuredStretch, a.MeanStretch, a.ProbeRoutes, a.StretchBound)
	fmt.Printf("tables: %d words (%.1f KiB)   labels: max %d bits, mean %.1f (O(log n))\n",
		a.Entries, float64(a.TableBytes)/1024, a.MaxLabelBits, a.AvgLabelBits)

	if *trees {
		depths, perNode := sch.TreeStats()
		sort.Ints(depths)
		sort.Ints(perNode)
		fmt.Printf("trees: %d total; depth median=%d max=%d; trees/node median=%d max=%d\n",
			len(depths), depths[len(depths)/2], depths[len(depths)-1],
			perNode[len(perNode)/2], perNode[len(perNode)-1])
	}
}
