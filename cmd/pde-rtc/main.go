// Command pde-rtc builds Theorem 4.5 routing tables on a generated
// topology, measures route stretch against ground truth, and reports the
// construction's round breakdown, label sizes and (with -trees) the
// Lemma 4.4 tree statistics.
//
// Usage:
//
//	pde-rtc [-n 60] [-k 2] [-eps 0.25] [-p 0.25] [-seed 1] [-trees]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pde"
)

func main() {
	n := flag.Int("n", 60, "number of nodes")
	k := flag.Int("k", 2, "stretch parameter (stretch <= 6k-1)")
	eps := flag.Float64("eps", 0.25, "PDE slack")
	prob := flag.Float64("p", 0.25, "skeleton sampling probability (0 = paper's n^{-1/2-1/(4k)})")
	seed := flag.Int64("seed", 1, "seed")
	trees := flag.Bool("trees", false, "print Lemma 4.4 tree statistics")
	flag.Parse()

	g := pde.RandomGraph(*n, 6.0/float64(*n), 16, *seed)
	sch, err := pde.BuildRoutingScheme(g, pde.RoutingParams{
		K: *k, Epsilon: *eps, SampleProb: *prob, Seed: *seed,
	}, pde.Config{Parallel: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d   skeleton |S|=%d   spanner edges=%d\n",
		g.N(), g.M(), len(sch.Skeleton), len(sch.Span.Edges))
	fmt.Printf("rounds: short-range=%d skeleton=%d spanner=%d tree-labeling=%d total=%d\n",
		sch.Rounds.ShortRangePDE, sch.Rounds.SkeletonPDE, sch.Rounds.Spanner,
		sch.Rounds.TreeLabeling, sch.Rounds.Total)

	truth := pde.GroundTruth(g)
	worst, sum, cnt := 0.0, 0.0, 0
	maxBits := 0
	for v := 0; v < g.N(); v++ {
		if b := sch.LabelBits(v); b > maxBits {
			maxBits = b
		}
		for w := 0; w < g.N(); w++ {
			if v == w {
				continue
			}
			rt, err := sch.Route(v, sch.Labels[w])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			s := rt.Stretch(truth.Dist(v, w))
			sum += s
			cnt++
			if s > worst {
				worst = s
			}
		}
	}
	fmt.Printf("stretch: max=%.3f mean=%.3f bound(6k-1)=%d\n", worst, sum/float64(cnt), 6**k-1)
	fmt.Printf("labels: max %d bits (O(log n))\n", maxBits)

	if *trees {
		depths, perNode := sch.TreeStats()
		sort.Ints(depths)
		sort.Ints(perNode)
		fmt.Printf("trees: %d total; depth median=%d max=%d; trees/node median=%d max=%d\n",
			len(depths), depths[len(depths)/2], depths[len(depths)-1],
			perNode[len(perNode)/2], perNode[len(perNode)-1])
	}
}
