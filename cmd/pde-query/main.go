// Command pde-query is a load generator for the serving side of the
// repository: it builds a PDE result (Theorem 4.1 APSP or a partial
// (S, h, σ) sweep), compiles it into the flat indexed oracle
// (internal/oracle), and fires a randomized stream of distance / next-hop
// / route queries at it, reporting sustained queries per second.
//
// Usage:
//
//	pde-query [-n 256] [-topology random|grid|internet|ring|powerlaw|
//	          community|roadgrid] [-eps 0.5] [-maxw 16] [-h 0] [-sigma 0]
//	          [-scheme oracle|rtc|compact] [-k 0] [-sample-prob 0]
//	          [-queries 1000000] [-workers 1] [-build-workers 0]
//	          [-workload estimate|nexthop|route] [-seed 1] [-legacy] [-json]
//
// With -scheme rtc or compact, the tables are built through the unified
// registry (internal/scheme) and the stream is served from that scheme's
// AnswerInto/Route surface — the same code path a pde-serve scheme shard
// uses — with the scheme's table/label/stretch accounting in the summary.
// The oracle-specific -legacy comparison is unavailable there.
//
//	-h/-sigma 0   means full APSP (S = V, h = σ = n); positive values run
//	              a partial sweep with every third node a source
//	-n            node count. The grid and roadgrid topologies round n up
//	              to the next perfect square; the emitted n field reports
//	              the actual size
//	-workers N    fan the estimate workload's oracle pass across N
//	              goroutines (0 = GOMAXPROCS). The legacy scan path and
//	              the nexthop/route workloads are always single-threaded,
//	              so leave the default of 1 when comparing a run against
//	              its -legacy twin apples-to-apples; workers > 1 measures
//	              the additional concurrent-serving headroom on top.
//	-build-workers N  worker-pool width of the parallel table build (the
//	              rounding-instance pipeline; 0 = GOMAXPROCS). The build is
//	              bit-identical at any width; this only moves build_ns.
//	-legacy       serve from the legacy scan path instead of the oracle
//	-json         emit a machine-readable summary instead of prose
//
// Cluster mode points the same remote workloads at a pde-cluster
// coordinator instead of a single daemon: every request is routed (and
// failed over) by the coordinator, and the run starts with a topology
// banner on stderr listing the daemons and shard placements behind it:
//
//	pde-query -cluster http://127.0.0.1:7480 [-shard main] [every remote flag]
//
// Remote mode turns the same load generator into the stress tool for the
// pde-serve daemon (internal/server): instead of building tables locally
// it discovers the target shard's size from /v1/stats and fires the query
// stream over HTTP in -batch sized requests from -workers concurrent
// clients:
//
//	pde-query -remote http://127.0.0.1:7475 [-shard main] [-batch 4096]
//	          [-codec binary|json|wire] [-depth 16]
//	          [-workload estimate|nexthop|route]
//	          [-queries N] [-workers N] [-seed 1] [-json]
//
// The route workload is always JSON (routes are variable-length); with
// partial-sweep shards unroutable pairs are counted, not fatal.
//
// -codec wire switches the estimate and nexthop workloads onto the PDE2
// raw-TCP framed protocol: the daemon's wire endpoint is discovered from
// /v1/stats (wire_addr, so the daemon must run with -wire-addr), each
// worker holds one persistent connection, and -depth frames are kept in
// flight per connection (pipelining). Same batches, same answers, no
// HTTP framing on the hot path.
//
// Set-distance mode fires one aggregate /v1/setdist query instead of a
// batch stream: two seeded member sets are sampled from the shard and
// the daemon answers their Chamfer / Hausdorff / mean-min aggregates
// (docs/serving.md describes the endpoint):
//
//	pde-query -remote http://127.0.0.1:7475 -setdist [-set-a 32] [-set-b 64]
//	          [-shard main] [-codec binary|json] [-naive] [-seed 1] [-json]
//
// -naive asks the server for the reference |A|×|B| evaluation instead of
// the pruned engine; the aggregates are bit-identical either way, so the
// flag exists to compare served wall clock and evaluated counts.
//
// Update mode drives edge churn instead of queries: it regenerates the
// target shard's graph client-side from the spec in /v1/stats, then
// applies -updates seeded single-edge ±1 reweights one at a time through
// /v1/update, mirroring each change locally so every reweight names a
// live edge with its current weight:
//
//	pde-query -remote http://127.0.0.1:7475 -updates 50 [-shard main]
//	          [-update-seed 1] [-update-verify] [-json]
//
// The summary reports how many updates the incremental delta path served
// versus full rebuilds, the mean damage (affected rounding-instance
// fraction), and the final serving fingerprint. -update-verify makes the
// daemon check every published generation against a from-scratch build
// on the same graph (refusing to publish on mismatch) — the CI churn
// smoke runs with it on. The shard must not already be mutated: a prior
// churn stream leaves the serving graph unreproducible from its spec,
// so the tool refuses and asks for a /v1/rebuild first.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pde/internal/cluster"
	"pde/internal/congest"
	"pde/internal/core"
	"pde/internal/graph"
	"pde/internal/oracle"
	"pde/internal/scheme"
	"pde/internal/server"
	"pde/internal/wire"
)

type summary struct {
	Workload      string  `json:"workload"`
	Scheme        string  `json:"scheme,omitempty"`
	Topology      string  `json:"topology"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Queries       int     `json:"queries"`
	Workers       int     `json:"workers"`
	Legacy        bool    `json:"legacy"`
	BuildNS       int64   `json:"build_ns"`
	BuildWorkers  int     `json:"build_workers"`
	BuildFP       string  `json:"build_fingerprint"`
	OracleBuildNS int64   `json:"oracle_build_ns"`
	OracleBytes   int64   `json:"oracle_bytes"`
	OracleEntries int     `json:"oracle_entries"`
	WallNS        int64   `json:"wall_ns"`
	QPS           float64 `json:"qps"`
	NSPerQuery    float64 `json:"ns_per_query"`

	// Scheme-mode fields (absent for the oracle workloads).
	TableBytes      int64   `json:"table_bytes,omitempty"`
	MaxLabelBits    int     `json:"max_label_bits,omitempty"`
	MeasuredStretch float64 `json:"measured_stretch,omitempty"`
	StretchBound    float64 `json:"stretch_bound,omitempty"`

	// Remote-mode fields (absent in local runs).
	Remote    string `json:"remote,omitempty"`
	Shard     string `json:"shard,omitempty"`
	Batch     int    `json:"batch,omitempty"`
	Codec     string `json:"codec,omitempty"`
	Depth     int    `json:"depth,omitempty"`
	RemoteFP  string `json:"remote_fingerprint,omitempty"`
	Delivered int    `json:"delivered,omitempty"`
	// WireFPs is every distinct generation fingerprint stamped on the
	// PDE2 answer frames of a -codec wire run, sorted. A steady-state
	// run observes exactly one; a run concurrent with a /v1/rebuild may
	// observe two (pre- and post-swap generations) — anything else is a
	// coherence violation.
	WireFPs []string `json:"wire_fingerprints,omitempty"`
}

func main() {
	n := flag.Int("n", 256, "number of nodes")
	topology := flag.String("topology", "random", graph.GeneratorList())
	schemeName := flag.String("scheme", "oracle", "local mode: which scheme's tables to build and query ("+scheme.List()+")")
	k := flag.Int("k", 0, "rtc/compact stretch parameter (0 = scheme default)")
	sampleProb := flag.Float64("sample-prob", 0, "rtc skeleton sampling probability override")
	eps := flag.Float64("eps", 0.5, "PDE approximation slack")
	maxW := flag.Int64("maxw", 16, "maximum edge weight")
	h := flag.Int("h", 0, "hop bound (0 = APSP)")
	sigma := flag.Int("sigma", 0, "list size (0 = APSP)")
	queries := flag.Int("queries", 1_000_000, "number of queries to fire")
	workers := flag.Int("workers", 1, "oracle estimate-pass fan-out; 1 = apples-to-apples vs -legacy (0 = GOMAXPROCS)")
	buildWorkers := flag.Int("build-workers", 0, "parallel table-build worker-pool width (0 = GOMAXPROCS)")
	workload := flag.String("workload", "estimate", "estimate | nexthop | route")
	seed := flag.Int64("seed", 1, "graph and query stream seed")
	legacy := flag.Bool("legacy", false, "serve from the legacy scan path instead of the oracle")
	asJSON := flag.Bool("json", false, "emit a JSON summary")
	remote := flag.String("remote", "", "base URL of a pde-serve daemon; fire the stream over HTTP instead of building locally")
	clusterURL := flag.String("cluster", "", "base URL of a pde-cluster coordinator; like -remote but prints the cluster topology first and routes every request through the coordinator")
	shard := flag.String("shard", "main", "remote mode: shard to target")
	batch := flag.Int("batch", 4096, "remote mode: queries per request")
	codec := flag.String("codec", "binary", "remote mode: binary | json batch bodies, or wire for the PDE2 raw-TCP protocol (route is always json)")
	depth := flag.Int("depth", 16, "remote mode, -codec wire: pipelined frames in flight per connection")
	setDist := flag.Bool("setdist", false, "remote mode: fire one aggregate set-distance query instead of a batch stream")
	setA := flag.Int("set-a", 32, "-setdist: member count of set A (seeded sample of the shard's nodes)")
	setB := flag.Int("set-b", 64, "-setdist: member count of set B (seeded sample of the shard's nodes)")
	naive := flag.Bool("naive", false, "-setdist: request the naive |A|x|B| reference evaluation instead of the pruned engine")
	updates := flag.Int("updates", 0, "remote mode: drive this many seeded single-edge reweights through /v1/update instead of a query stream")
	updateSeed := flag.Int64("update-seed", 1, "-updates: churn stream seed")
	updateVerify := flag.Bool("update-verify", false, "-updates: ask the daemon to verify every update against a from-scratch build before publishing")
	flag.Parse()

	if *clusterURL != "" {
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "pde-query: use either -remote or -cluster, not both")
			os.Exit(2)
		}
		// The coordinator is wire-compatible with a daemon, so cluster
		// mode is remote mode pointed at it — plus a topology banner so
		// a run's logs show which daemons were behind it.
		describeCluster(*clusterURL)
		*remote = *clusterURL
	}
	if *setDist && *remote == "" {
		fmt.Fprintln(os.Stderr, "pde-query: -setdist is a remote mode; point it at a daemon with -remote")
		os.Exit(2)
	}
	if *updates > 0 && *remote == "" {
		fmt.Fprintln(os.Stderr, "pde-query: -updates is a remote mode; point it at a daemon with -remote")
		os.Exit(2)
	}
	if *remote != "" && *updates > 0 {
		runUpdates(updateOpts{
			base: *remote, shard: *shard, updates: *updates,
			seed: *updateSeed, verify: *updateVerify, asJSON: *asJSON,
		})
		return
	}
	if *remote != "" && *setDist {
		runSetDist(setDistOpts{
			base: *remote, shard: *shard, codec: *codec,
			sizeA: *setA, sizeB: *setB, naive: *naive, seed: *seed,
			asJSON: *asJSON,
		})
		return
	}

	if *remote != "" {
		runRemote(remoteOpts{
			base: *remote, shard: *shard, workload: *workload, codec: *codec,
			queries: *queries, batch: *batch, workers: *workers, seed: *seed,
			depth: *depth, asJSON: *asJSON,
		})
		return
	}

	if *schemeName != "oracle" && *schemeName != "" {
		runScheme(schemeOpts{
			scheme: *schemeName, topology: *topology, n: *n, eps: *eps,
			maxW: *maxW, h: *h, sigma: *sigma, seed: *seed, k: *k,
			sampleProb: *sampleProb, buildWorkers: *buildWorkers,
			workload: *workload, queries: *queries, workers: *workers,
			asJSON: *asJSON, legacy: *legacy,
		})
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := graph.Generate(*topology, *n, graph.Weight(*maxW), rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pde-query: %v\n", err)
		os.Exit(2)
	}

	params := core.APSPParams(g.N(), *eps)
	if *h > 0 || *sigma > 0 {
		src := make([]bool, g.N())
		for v := 0; v < g.N(); v += 3 {
			src[v] = true
		}
		hh, sig := *h, *sigma
		if hh <= 0 {
			hh = g.N()
		}
		if sig <= 0 {
			sig = g.N()
		}
		params = core.Params{IsSource: src, H: hh, Sigma: sig, Epsilon: *eps, CapMessages: true}
	}

	buildCfg := congest.Config{Parallel: true, Workers: *buildWorkers}
	t0 := time.Now()
	res, err := core.Run(g, params, buildCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pde-query: build: %v\n", err)
		os.Exit(1)
	}
	buildNS := time.Since(t0).Nanoseconds()

	o := oracle.Compile(res)
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	sum := summary{
		Workload: *workload, Topology: *topology, N: g.N(), M: g.M(),
		Queries: *queries, Workers: w, Legacy: *legacy,
		BuildNS:       buildNS,
		BuildWorkers:  buildCfg.EffectiveWorkers(),
		BuildFP:       fmt.Sprintf("%016x", res.Fingerprint()),
		OracleBuildNS: o.BuildTime.Nanoseconds(),
		OracleBytes:   o.Bytes(),
		OracleEntries: o.Entries(),
	}

	qs := make([]oracle.Query, *queries)
	if *workload == "route" {
		// Routes are only guaranteed deliverable for destinations in the
		// origin's output list (Corollary 3.5); with partial sweeps most
		// uniform (v, s) pairs have no entry and Route would rightly fail.
		for i := range qs {
			found := false
			for attempt := 0; attempt < 1000; attempt++ {
				v := rng.Intn(g.N())
				lst := res.Lists[v]
				if len(lst) == 0 {
					continue
				}
				qs[i] = oracle.Query{V: int32(v), S: lst[rng.Intn(len(lst))].Src}
				found = true
				break
			}
			if !found {
				fmt.Fprintln(os.Stderr, "pde-query: no routable (v, s) pairs in these tables")
				os.Exit(1)
			}
		}
	} else {
		for i := range qs {
			qs[i] = oracle.Query{V: int32(rng.Intn(g.N())), S: int32(rng.Intn(g.N()))}
		}
	}

	var wall time.Duration
	switch *workload {
	case "estimate":
		if *legacy {
			t0 = time.Now()
			for _, q := range qs {
				res.Estimate(int(q.V), q.S)
			}
			wall = time.Since(t0)
		} else if w == 1 {
			out := make([]oracle.Answer, len(qs))
			t0 = time.Now()
			o.AnswerAll(qs, out)
			wall = time.Since(t0)
		} else {
			t0 = time.Now()
			o.AnswerParallel(qs, w)
			wall = time.Since(t0)
		}
	case "nexthop":
		var router *core.Router
		if *legacy {
			router = core.NewRouter(g, res)
		} else {
			router = core.NewRouterWith(g, res, o)
		}
		t0 = time.Now()
		for _, q := range qs {
			router.NextHop(int(q.V), q.S)
		}
		wall = time.Since(t0)
	case "route":
		var router *core.Router
		if *legacy {
			router = core.NewRouter(g, res)
		} else {
			router = core.NewRouterWith(g, res, o)
		}
		t0 = time.Now()
		for _, q := range qs {
			if _, err := router.Route(int(q.V), q.S); err != nil {
				fmt.Fprintf(os.Stderr, "pde-query: route %d->%d: %v\n", q.V, q.S, err)
				os.Exit(1)
			}
		}
		wall = time.Since(t0)
	default:
		fmt.Fprintf(os.Stderr, "pde-query: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	sum.WallNS = wall.Nanoseconds()
	if wall > 0 {
		sum.QPS = float64(*queries) / wall.Seconds()
		sum.NSPerQuery = float64(sum.WallNS) / float64(*queries)
	}

	if *asJSON {
		data, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pde-query: marshal: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	path := "oracle"
	if *legacy {
		path = "legacy scan"
	}
	fmt.Printf("pde-query: %s/%s n=%d m=%d — built tables in %.1fms (%d build workers, fp %s), oracle in %.2fms (%d entries, %.1f KiB)\n",
		*workload, *topology, g.N(), g.M(),
		float64(buildNS)/1e6, sum.BuildWorkers, sum.BuildFP, float64(sum.OracleBuildNS)/1e6,
		sum.OracleEntries, float64(sum.OracleBytes)/1024)
	fmt.Printf("pde-query: served %d queries from the %s path with %d worker(s) in %.1fms: %.0f queries/sec (%.0f ns/query)\n",
		*queries, path, w, float64(sum.WallNS)/1e6, sum.QPS, sum.NSPerQuery)
}

// schemeOpts parameterizes a local run against a non-oracle scheme from
// the unified registry (internal/scheme).
type schemeOpts struct {
	scheme, topology string
	n                int
	eps              float64
	maxW             int64
	h, sigma, k      int
	sampleProb       float64
	seed             int64
	buildWorkers     int
	workload         string
	queries, workers int
	asJSON, legacy   bool
}

// runScheme builds an rtc or compact instance through the registry and
// fires the query stream at its serving surface — the same AnswerInto /
// Route paths the daemon uses for scheme shards.
func runScheme(opt schemeOpts) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pde-query: "+format+"\n", args...)
		os.Exit(1)
	}
	if opt.legacy {
		fail("-legacy only applies to the oracle scheme's scan-vs-index comparison")
	}
	sp := scheme.Spec{
		Scheme: opt.scheme, Topology: opt.topology, N: opt.n, Eps: opt.eps,
		MaxW: opt.maxW, H: opt.h, Sigma: opt.sigma, Seed: opt.seed,
		BuildWorkers: opt.buildWorkers, K: opt.k, SampleProb: opt.sampleProb,
	}
	inst, err := scheme.Build(sp)
	if err != nil {
		fail("%v", err)
	}
	g := inst.Graph()
	w := opt.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	a := inst.Accounting()
	sum := summary{
		Workload: opt.workload, Scheme: inst.Scheme(), Topology: opt.topology,
		N: g.N(), M: g.M(), Queries: opt.queries, Workers: w,
		BuildNS:         inst.BuildNS(),
		BuildFP:         fmt.Sprintf("%016x", inst.Fingerprint()),
		TableBytes:      a.TableBytes,
		MaxLabelBits:    a.MaxLabelBits,
		MeasuredStretch: a.MeasuredStretch,
		StretchBound:    a.StretchBound,
	}

	rng := rand.New(rand.NewSource(opt.seed))
	qs := make([]oracle.Query, opt.queries)
	for i := range qs {
		qs[i] = oracle.Query{V: int32(rng.Intn(g.N())), S: int32(rng.Intn(g.N()))}
	}

	var wall time.Duration
	switch opt.workload {
	case "estimate", "nexthop":
		// Both ride AnswerInto: every answer carries the scheme's distance
		// estimate and its first forwarding hop.
		out := make([]oracle.Answer, len(qs))
		t0 := time.Now()
		inst.AnswerInto(qs, out, w)
		wall = time.Since(t0)
	case "route":
		t0 := time.Now()
		for _, q := range qs {
			if _, err := inst.Route(int(q.V), q.S); err != nil {
				fail("route %d->%d: %v", q.V, q.S, err)
			}
		}
		wall = time.Since(t0)
	default:
		fail("unknown workload %q", opt.workload)
	}
	sum.WallNS = wall.Nanoseconds()
	if wall > 0 {
		sum.QPS = float64(opt.queries) / wall.Seconds()
		sum.NSPerQuery = float64(sum.WallNS) / float64(opt.queries)
	}
	if opt.asJSON {
		data, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			fail("marshal: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	fmt.Printf("pde-query: %s/%s/%s n=%d m=%d — built tables in %.1fms (fp %s): %.1f KiB, labels <= %d bits, measured stretch %.3f (bound %.0f)\n",
		sum.Scheme, opt.workload, opt.topology, g.N(), g.M(),
		float64(sum.BuildNS)/1e6, sum.BuildFP, float64(a.TableBytes)/1024,
		a.MaxLabelBits, a.MeasuredStretch, a.StretchBound)
	fmt.Printf("pde-query: served %d %s queries with %d worker(s) in %.1fms: %.0f queries/sec (%.0f ns/query)\n",
		opt.queries, opt.workload, w, float64(sum.WallNS)/1e6, sum.QPS, sum.NSPerQuery)
}

// remoteOpts parameterizes a remote-mode run against a pde-serve daemon.
type remoteOpts struct {
	base     string
	shard    string
	workload string
	codec    string
	queries  int
	batch    int
	workers  int
	seed     int64
	depth    int
	asJSON   bool
}

// runRemote fires the query stream at a live daemon and reports
// end-to-end throughput. It exits the process on any error: the tool is
// a load generator, and a failing request means the measurement is void.
func runRemote(opt remoteOpts) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pde-query: "+format+"\n", args...)
		os.Exit(1)
	}
	if opt.codec != "binary" && opt.codec != "json" && opt.codec != "wire" {
		fail("unknown codec %q (want binary, json or wire)", opt.codec)
	}
	if opt.codec == "wire" && opt.workload == "route" {
		fail("the route workload is not part of the PDE2 wire protocol; use -codec binary or json")
	}
	if opt.batch <= 0 {
		fail("-batch must be positive")
	}
	if opt.codec == "wire" && opt.depth <= 0 {
		fail("-depth must be positive")
	}
	workers := opt.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	client := &server.Client{BaseURL: opt.base, Shard: opt.shard}
	st, err := client.Stats(ctx)
	if err != nil {
		fail("fetching /v1/stats from %s: %v", opt.base, err)
	}
	status, ok := st.Shards[opt.shard]
	if !ok {
		names := make([]string, 0, len(st.Shards))
		for name := range st.Shards {
			names = append(names, name)
		}
		fail("daemon has no shard %q (shards: %v)", opt.shard, names)
	}
	n := status.N

	rng := rand.New(rand.NewSource(opt.seed))
	qs := make([]oracle.Query, opt.queries)
	for i := range qs {
		qs[i] = oracle.Query{V: int32(rng.Intn(n)), S: int32(rng.Intn(n))}
	}

	sum := summary{
		Workload: opt.workload, Topology: status.Spec.Topology, N: n, M: status.M,
		Queries: opt.queries, Workers: workers,
		Remote: opt.base, Shard: opt.shard, Batch: opt.batch, Codec: opt.codec,
		RemoteFP: status.Fingerprint,
	}
	if opt.workload == "route" {
		sum.Codec = "json"
	}

	if opt.codec == "wire" {
		if st.WireAddr == "" {
			fail("daemon %s reports no wire endpoint in /v1/stats — start pde-serve with -wire-addr", opt.base)
		}
		sum.Depth = opt.depth
		runRemoteWire(opt, server.ResolveWireAddr(opt.base, st.WireAddr), workers, qs, sum, fail)
		return
	}

	// Split the stream into batch-sized requests and fan them across
	// workers (server.SplitSpans + server.DriveBatches, the same harness
	// the serving benchmark uses). Each worker gets its own Transport so
	// its connection actually stays warm: pooling all workers through
	// one transport would cap idle connections at MaxIdleConnsPerHost
	// and make the others re-dial per batch. server.DefaultTransport
	// carries the package's dial/response-header timeouts, so a hung
	// daemon fails the run instead of blocking it forever.
	spans := server.SplitSpans(len(qs), opt.batch)
	cls := make([]*server.Client, workers)
	for w := range cls {
		cls[w] = &server.Client{BaseURL: opt.base, Shard: opt.shard,
			HTTP: &http.Client{Transport: server.DefaultTransport()}}
	}
	var delivered atomic.Int64
	t0 := time.Now()
	err = server.DriveBatches(workers, len(spans), func(w, i int) error {
		part := qs[spans[i].Lo:spans[i].Hi]
		switch opt.workload {
		case "estimate":
			answers, _, err := cls[w].Estimate(ctx, part, opt.codec == "json")
			if err != nil {
				return err
			}
			for _, a := range answers {
				if a.OK {
					delivered.Add(1)
				}
			}
		case "nexthop":
			hops, _, err := cls[w].NextHop(ctx, part, opt.codec == "json")
			if err != nil {
				return err
			}
			for _, h := range hops {
				if h.OK {
					delivered.Add(1)
				}
			}
		case "route":
			pairs := make([]server.WirePair, len(part))
			for j, q := range part {
				pairs[j] = server.WirePair{From: q.V, To: q.S}
			}
			resp, err := cls[w].Route(ctx, pairs)
			if err != nil {
				return err
			}
			for _, rt := range resp.Routes {
				if rt.OK {
					delivered.Add(1)
				}
			}
		default:
			return fmt.Errorf("unknown workload %q", opt.workload)
		}
		return nil
	})
	wall := time.Since(t0)
	if err != nil {
		fail("remote %s workload: %v", opt.workload, err)
	}

	sum.Delivered = int(delivered.Load())
	sum.WallNS = wall.Nanoseconds()
	if wall > 0 {
		sum.QPS = float64(opt.queries) / wall.Seconds()
		sum.NSPerQuery = float64(sum.WallNS) / float64(opt.queries)
	}
	if opt.asJSON {
		data, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			fail("marshal: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	fmt.Printf("pde-query: remote %s/%s shard=%q n=%d (fingerprint %s)\n",
		opt.workload, opt.base, opt.shard, n, sum.RemoteFP)
	fmt.Printf("pde-query: served %d queries (%d delivered) in %d-query %s batches over %d client(s) in %.1fms: %.0f queries/sec (%.0f ns/query)\n",
		opt.queries, sum.Delivered, opt.batch, sum.Codec, workers, float64(sum.WallNS)/1e6, sum.QPS, sum.NSPerQuery)
}

// runRemoteWire drives the estimate or nexthop stream over the PDE2
// raw-TCP protocol: each worker holds one persistent connection bound to
// the shard and keeps opt.depth frames in flight (submitting a chunk of
// depth batches, then draining with Wait). Answers are decoded to count
// deliveries, so the measurement covers the same end-to-end work as the
// HTTP codecs.
func runRemoteWire(opt remoteOpts, wireAddr string, workers int, qs []oracle.Query, sum summary, fail func(string, ...any)) {
	spans := server.SplitSpans(len(qs), opt.batch)
	var (
		delivered atomic.Int64
		firstErr  atomic.Pointer[error]
		wg        sync.WaitGroup
		fpMu      sync.Mutex
		fpSeen    = map[uint64]bool{}
	)
	setErr := func(err error) { firstErr.CompareAndSwap(nil, &err) }
	seeFP := func(fp uint64) {
		fpMu.Lock()
		fpSeen[fp] = true
		fpMu.Unlock()
	}

	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.DialTimeout(wireAddr, 10*time.Second)
			if err != nil {
				setErr(fmt.Errorf("worker %d: dialing wire endpoint %s: %w", w, wireAddr, err))
				return
			}
			defer c.Close()
			if _, _, err := c.Bind(opt.shard); err != nil {
				setErr(fmt.Errorf("worker %d: bind %q: %w", w, opt.shard, err))
				return
			}
			p, err := c.NewPipeline(opt.depth)
			if err != nil {
				setErr(fmt.Errorf("worker %d: pipeline: %w", w, err))
				return
			}
			defer p.Close()

			outs := make([][]oracle.Answer, opt.depth)
			hops := make([][]wire.Hop, opt.depth)
			ress := make([]wire.Result, opt.depth)
			for j := range outs {
				outs[j] = make([]oracle.Answer, opt.batch)
				hops[j] = make([]wire.Hop, opt.batch)
			}
			// Worker w owns spans w, w+workers, w+2*workers, ... processed
			// in depth-sized chunks: submit the whole chunk (frames queue in
			// flight), then Wait drains it.
			mine := make([]server.Span, 0, (len(spans)+workers-1)/workers)
			for i := w; i < len(spans); i += workers {
				mine = append(mine, spans[i])
			}
			for lo := 0; lo < len(mine); lo += opt.depth {
				k := len(mine) - lo
				if k > opt.depth {
					k = opt.depth
				}
				for j := 0; j < k; j++ {
					part := qs[mine[lo+j].Lo:mine[lo+j].Hi]
					var serr error
					if opt.workload == "estimate" {
						serr = p.Estimate(part, outs[j][:len(part)], &ress[j])
					} else {
						serr = p.NextHop(part, hops[j][:len(part)], &ress[j])
					}
					if serr != nil {
						setErr(fmt.Errorf("worker %d: submit: %w", w, serr))
						return
					}
				}
				if err := p.Wait(); err != nil {
					setErr(fmt.Errorf("worker %d: pipeline: %w", w, err))
					return
				}
				for j := 0; j < k; j++ {
					if ress[j].Err != nil {
						setErr(fmt.Errorf("worker %d: frame: %w", w, ress[j].Err))
						return
					}
					seeFP(ress[j].FP)
					count := mine[lo+j].Hi - mine[lo+j].Lo
					if opt.workload == "estimate" {
						for _, a := range outs[j][:count] {
							if a.OK {
								delivered.Add(1)
							}
						}
					} else {
						for _, h := range hops[j][:count] {
							if h.OK {
								delivered.Add(1)
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)
	if ep := firstErr.Load(); ep != nil {
		fail("remote %s workload over wire: %v", opt.workload, *ep)
	}

	sum.Delivered = int(delivered.Load())
	sum.WallNS = wall.Nanoseconds()
	if wall > 0 {
		sum.QPS = float64(opt.queries) / wall.Seconds()
		sum.NSPerQuery = float64(sum.WallNS) / float64(opt.queries)
	}
	for fp := range fpSeen {
		sum.WireFPs = append(sum.WireFPs, fmt.Sprintf("%016x", fp))
	}
	sort.Strings(sum.WireFPs)
	if opt.asJSON {
		data, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			fail("marshal: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	fmt.Printf("pde-query: remote %s/%s shard=%q n=%d (fingerprint %s, PDE2 %s, generations seen %v)\n",
		opt.workload, opt.base, opt.shard, sum.N, sum.RemoteFP, wireAddr, sum.WireFPs)
	fmt.Printf("pde-query: served %d queries (%d delivered) in %d-query frames, depth %d, over %d connection(s) in %.1fms: %.0f queries/sec (%.0f ns/query)\n",
		opt.queries, sum.Delivered, opt.batch, opt.depth, workers, float64(sum.WallNS)/1e6, sum.QPS, sum.NSPerQuery)
}

// setDistOpts parameterizes a -setdist run against a pde-serve daemon.
type setDistOpts struct {
	base, shard, codec string
	sizeA, sizeB       int
	naive              bool
	seed               int64
	asJSON             bool
}

// runSetDist samples two seeded member sets from the target shard and
// fires a single /v1/setdist aggregate query, printing the Chamfer /
// Hausdorff / mean-min aggregates and the server's pruning accounting.
func runSetDist(opt setDistOpts) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pde-query: "+format+"\n", args...)
		os.Exit(1)
	}
	if opt.codec != "binary" && opt.codec != "json" {
		fail("unknown codec %q (want binary or json)", opt.codec)
	}
	if opt.sizeA <= 0 || opt.sizeB <= 0 {
		fail("-set-a and -set-b must be positive (got %d, %d)", opt.sizeA, opt.sizeB)
	}
	ctx := context.Background()
	client := &server.Client{BaseURL: opt.base, Shard: opt.shard}
	st, err := client.Stats(ctx)
	if err != nil {
		fail("fetching /v1/stats from %s: %v", opt.base, err)
	}
	status, ok := st.Shards[opt.shard]
	if !ok {
		fail("daemon has no shard %q", opt.shard)
	}
	n := status.N

	rng := rand.New(rand.NewSource(opt.seed))
	a := make([]int32, opt.sizeA)
	for i := range a {
		a[i] = int32(rng.Intn(n))
	}
	b := make([]int32, opt.sizeB)
	for i := range b {
		b[i] = int32(rng.Intn(n))
	}

	t0 := time.Now()
	resp, err := client.SetDist(ctx, a, b, opt.naive, opt.codec == "json")
	wall := time.Since(t0)
	if err != nil {
		fail("setdist: %v", err)
	}

	if opt.asJSON {
		data, err := json.MarshalIndent(struct {
			*server.SetDistResponse
			WallNS int64 `json:"wall_ns"`
		}{resp, wall.Nanoseconds()}, "", "  ")
		if err != nil {
			fail("marshal: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}

	agg := func(w server.WireAggregates) string {
		if !w.Finite {
			return fmt.Sprintf("chamfer=inf hausdorff=inf mean-min=inf (%d of %d members unreachable)",
				w.Unreachable, w.Members)
		}
		return fmt.Sprintf("chamfer=%.3f hausdorff=%.3f mean-min=%.3f", w.Chamfer, w.Hausdorff, w.MeanMin)
	}
	sym := "inf"
	if resp.HausdorffFinite {
		sym = fmt.Sprintf("%.3f", resp.Hausdorff)
	}
	mode := "pruned"
	if opt.naive {
		mode = "naive"
	}
	fmt.Printf("pde-query: setdist shard=%q n=%d |A|=%d |B|=%d codec=%s (fingerprint %s)\n",
		opt.shard, n, len(a), len(b), opt.codec, resp.Fingerprint)
	fmt.Printf("pde-query: A->B %s\n", agg(resp.AB))
	fmt.Printf("pde-query: B->A %s\n", agg(resp.BA))
	fmt.Printf("pde-query: symmetric Hausdorff %s — %s engine evaluated %d of %d candidate pairs (%d pruned) in %.2fms\n",
		sym, mode, resp.Evaluated, resp.Pairs, resp.Pruned, float64(wall.Nanoseconds())/1e6)
}

// updateOpts parameterizes an -updates churn run against a pde-serve
// daemon.
type updateOpts struct {
	base, shard string
	updates     int
	seed        int64
	verify      bool
	asJSON      bool
}

// updateSummary is the machine-readable report of an -updates run.
type updateSummary struct {
	Shard          string  `json:"shard"`
	Updates        int     `json:"updates"`
	DeltaUpdates   int     `json:"delta_updates"`
	RebuildUpdates int     `json:"rebuild_updates"`
	Verified       int     `json:"verified"`
	AvgDamage      float64 `json:"avg_damage"`
	WallNS         int64   `json:"wall_ns"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	Fingerprint    string  `json:"fingerprint"`
}

// runUpdates regenerates the shard's graph from its spec, then walks a
// seeded churn stream of single-edge ±1 reweights through /v1/update,
// keeping a local mirror of the serving graph in lockstep so every
// change targets a live edge. It exits the process on any error.
func runUpdates(opt updateOpts) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pde-query: "+format+"\n", args...)
		os.Exit(1)
	}
	ctx := context.Background()
	client := &server.Client{BaseURL: opt.base, Shard: opt.shard}
	st, err := client.Stats(ctx)
	if err != nil {
		fail("fetching /v1/stats from %s: %v", opt.base, err)
	}
	status, ok := st.Shards[opt.shard]
	if !ok {
		fail("daemon has no shard %q", opt.shard)
	}
	if status.Mutated {
		fail("shard %q is already mutated: its serving graph no longer matches its spec, so a client-side mirror cannot be reconstructed — POST /v1/rebuild first", opt.shard)
	}
	sp := status.Spec.Normalized()
	g, err := sp.BuildGraph()
	if err != nil {
		fail("regenerating shard %q graph from its spec: %v", opt.shard, err)
	}
	if fmt.Sprintf("%d", g.N()) != fmt.Sprintf("%d", status.N) {
		fail("regenerated graph has n=%d, shard reports n=%d", g.N(), status.N)
	}

	rng := rand.New(rand.NewSource(opt.seed))
	sum := updateSummary{Shard: opt.shard, Updates: opt.updates}
	var damage float64
	t0 := time.Now()
	for step := 0; step < opt.updates; step++ {
		edges := make([]graph.Change, 0, g.M())
		g.Edges(func(u, v int, w graph.Weight, _ int32) {
			edges = append(edges, graph.Change{Op: graph.OpReweight, U: u, V: v, W: w})
		})
		c := edges[rng.Intn(len(edges))]
		switch {
		case c.W <= 1:
			c.W++
		case c.W >= graph.Weight(sp.MaxW):
			c.W--
		case rng.Intn(2) == 0:
			c.W--
		default:
			c.W++
		}
		g2, _, err := g.ApplyChanges([]graph.Change{c})
		if err != nil {
			fail("step %d: mirroring reweight locally: %v", step, err)
		}
		resp, err := client.Update(ctx, server.UpdateRequest{
			Changes: []server.WireChange{{Op: "reweight", U: c.U, V: c.V, W: c.W}},
			Verify:  opt.verify,
		})
		if err != nil {
			fail("step %d: /v1/update: %v", step, err)
		}
		if resp.Path == "delta" {
			sum.DeltaUpdates++
		} else {
			sum.RebuildUpdates++
		}
		if resp.Verified {
			sum.Verified++
		}
		damage += resp.Damage
		sum.Fingerprint = resp.NewFingerprint
		g = g2
	}
	wall := time.Since(t0)
	sum.WallNS = wall.Nanoseconds()
	if opt.updates > 0 {
		sum.AvgDamage = damage / float64(opt.updates)
	}
	if wall > 0 {
		sum.UpdatesPerSec = float64(opt.updates) / wall.Seconds()
	}

	// The stream's final generation must be what the daemon now serves.
	st, err = client.Stats(ctx)
	if err != nil {
		fail("re-fetching /v1/stats: %v", err)
	}
	status = st.Shards[opt.shard]
	if status.Fingerprint != sum.Fingerprint {
		fail("daemon serves %s but the last update published %s", status.Fingerprint, sum.Fingerprint)
	}
	if !status.Mutated {
		fail("shard %q is not flagged mutated after %d updates", opt.shard, opt.updates)
	}

	if opt.asJSON {
		data, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			fail("marshal: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	fmt.Printf("pde-query: churn shard=%q n=%d — %d updates (%d delta, %d rebuild, %d verified), avg damage %.3f\n",
		opt.shard, g.N(), sum.Updates, sum.DeltaUpdates, sum.RebuildUpdates, sum.Verified, sum.AvgDamage)
	fmt.Printf("pde-query: applied in %.1fms (%.1f updates/sec), serving fingerprint %s\n",
		float64(sum.WallNS)/1e6, sum.UpdatesPerSec, sum.Fingerprint)
}

// describeCluster prints the coordinator's topology to stderr (stdout
// stays machine-readable for -json runs) and exits if the target is not
// a reachable pde-cluster coordinator.
func describeCluster(base string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cluster.FetchStatus(ctx, base, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pde-query: fetching /v1/cluster from %s: %v\n", base, err)
		os.Exit(1)
	}
	healthy := 0
	for _, d := range st.Daemons {
		if d.Healthy {
			healthy++
		}
	}
	fmt.Fprintf(os.Stderr, "pde-query: cluster %s — %d/%d daemons healthy, %d shard(s)\n",
		base, healthy, len(st.Daemons), len(st.Shards))
	for name, pl := range st.Shards {
		fmt.Fprintf(os.Stderr, "pde-query:   shard %q -> %v (%d healthy)\n", name, pl.Replicas, pl.Healthy)
	}
}
