// Command pde-pdesweep sweeps the PDE parameters (h, σ, ε) on one graph
// and prints the measured round budgets and per-node message counts
// against the Corollary 3.5 formulas.
//
// Usage:
//
//	pde-pdesweep [-n 100] [-maxw 32] [-seed 1] [-messages]
package main

import (
	"flag"
	"fmt"
	"os"

	"pde"
	"pde/internal/congest"
	"pde/internal/core"
)

func main() {
	n := flag.Int("n", 100, "number of nodes")
	maxw := flag.Int64("maxw", 32, "maximum edge weight")
	seed := flag.Int64("seed", 1, "seed")
	messages := flag.Bool("messages", false, "sweep σ for the Lemma 3.4 message bound instead of rounds")
	flag.Parse()

	g := pde.RandomGraph(*n, 6.0/float64(*n), *maxw, *seed)
	src := make([]bool, g.N())
	for v := 0; v < g.N(); v += 4 {
		src[v] = true
	}
	if *messages {
		fmt.Println("σ | max broadcasts/node | (i_max+1)·σ(σ+1)/2 bound")
		for _, sigma := range []int{2, 4, 8, 16, 32} {
			res, err := core.Run(g, core.Params{
				IsSource: src, H: *n, Sigma: sigma, Epsilon: 0.5, CapMessages: true,
			}, congest.Config{Parallel: true})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			bound := int64(len(res.Instances)) * int64(sigma) * int64(sigma+1) / 2
			fmt.Printf("%d | %d | %d\n", sigma, res.MaxBroadcasts(), bound)
		}
		return
	}
	fmt.Println("h | σ | ε | budget rounds | active rounds")
	for _, eps := range []float64{0.25, 0.5, 1} {
		for _, hs := range [][2]int{{10, 10}, {20, 20}, {40, 40}} {
			res, err := core.Run(g, core.Params{
				IsSource: src, H: hs[0], Sigma: hs[1], Epsilon: eps, CapMessages: true,
			}, congest.Config{Parallel: true})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%d | %d | %.2f | %d | %d\n",
				hs[0], hs[1], eps, res.BudgetRounds, res.ActiveRounds)
		}
	}
}
