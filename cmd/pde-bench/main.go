// Command pde-bench runs the reproducible benchmark matrix and writes one
// machine-readable BENCH_<scenario>.json per scenario (schema documented
// in internal/bench/harness.go). CI uploads these as artifacts so the
// performance trajectory is tracked PR-over-PR.
//
// Every construction scenario runs the sequential engine and the sharded
// parallel engine on the same instance, records both wall clocks plus the
// speedup, and fails if any output or cost counter diverges between the
// two — the benchmark doubles as an end-to-end determinism check.
//
// Build scenarios (BENCH_build_*.json, schema "pde-build/v1", see
// internal/bench/build.go) measure the table-build pipeline: the same PDE
// construction built sequentially and on the rounding-instance worker
// pool, with a fingerprint equality check between the two.
//
// Query scenarios (BENCH_query_*.json, schema "pde-query/v1", see
// internal/bench/query.go) measure the serving side: they build the
// tables once, then drive the same query stream through the legacy scan
// path and the compiled oracle, failing if any answer diverges.
//
// Serve scenarios (BENCH_serve_*.json, schema "pde-serve/v2", see
// internal/bench/serve.go) push the same tables behind the pde-serve
// daemon on a loopback listener and measure end-to-end throughput vs the
// in-process baseline — over both the HTTP batch codec and the PDE2
// raw-TCP framed protocol at pipeline depths 1/4/16/64, recording
// steady-state allocations per frame — failing if any answer diverges
// across either transport.
//
// Scheme scenarios (BENCH_scheme_*.json, schema "pde-scheme/v1", see
// internal/bench/scheme.go) pin the stretch-vs-bytes-vs-qps tradeoff of
// all three servable schemes (oracle | rtc | compact) on the identical
// seeded graph and query streams, through the unified scheme registry.
//
// Cluster scenarios (BENCH_cluster_*.json, schema "pde-cluster/v1", see
// internal/bench/cluster.go) push the same tables behind the pde-cluster
// coordinator fronting 1..N replicated daemons, record the throughput at
// every fleet size, and kill the primary replica mid-stream asserting
// zero lost, wrong, or generation-mismatched answers.
//
// Set-distance scenarios (BENCH_setdist_*.json, schema "pde-setdist/v1",
// see internal/bench/setdist.go) pin the aggregate tier: the pruned
// Chamfer/Hausdorff evaluation against its naive |A|×|B| twin on seeded
// set pairs, failing unless the aggregates are bit-identical.
//
// Update scenarios (BENCH_update_*.json, schema "pde-update/v1", see
// internal/bench/update.go) pin the incremental-update tier: a seeded
// churn stream of single-edge reweights, each step patching the compiled
// tables (scheme.Update) AND rebuilding them from scratch, failing
// unless the two are fingerprint-identical at every step; the artifact
// records the delta-vs-rebuild wall-clock ratio.
//
// Usage:
//
//	pde-bench [-quick] [-filter substr] [-out dir] [-list] [-workers n]
//	          [-seq-baseline=false] [-check dir]
//
//	-quick         run only the small CI smoke subset
//	-filter s      run only scenarios whose name contains s
//	-out dir       directory for BENCH_*.json files (default ".")
//	-list          print the matrix and exit
//	-workers n     worker-pool width for the parallel build scenarios
//	               (0 = GOMAXPROCS)
//	-seq-baseline  also run the sequential engine for a speedup baseline
//	               and cross-engine output check (default true)
//	-check dir     after each scenario, compare the deterministic fields
//	               (fingerprint, rounds, messages, instances) against the
//	               committed BENCH_*.json in dir and fail on divergence —
//	               the CI bench-regression guard
//
// The process exits non-zero if any scenario errors, so a CI job running
// it fails loudly rather than uploading partial results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"pde/internal/bench"
)

// deterministicFields are the report keys that must not drift between a
// rebuild and the committed artifact. Wall-clock and throughput fields are
// machine-dependent and deliberately absent.
var deterministicFields = []string{
	"schema", "fingerprint", "n", "m", "seed",
	"active_rounds", "budget_rounds", "messages", "message_bits",
	"instances", "queries", "updates", "delta_updates", "identical",
}

// checkAgainst compares the fresh report's deterministic fields with the
// committed artifact of the same name under dir. A missing committed file
// is an error: the guard exists to force artifacts to stay in lockstep
// with the code.
func checkAgainst(dir, filename string, fresh []byte) error {
	committed, err := os.ReadFile(filepath.Join(dir, filename))
	if err != nil {
		return fmt.Errorf("no committed artifact to check against: %w", err)
	}
	var want, got map[string]any
	if err := json.Unmarshal(committed, &want); err != nil {
		return fmt.Errorf("committed %s: %w", filename, err)
	}
	if err := json.Unmarshal(fresh, &got); err != nil {
		return fmt.Errorf("fresh %s: %w", filename, err)
	}
	for _, key := range deterministicFields {
		w, inWant := want[key]
		g, inGot := got[key]
		if !inWant && !inGot {
			continue
		}
		if inWant != inGot || w != g {
			return fmt.Errorf("%s: %s diverged from committed artifact: committed %v, rebuilt %v",
				filename, key, w, g)
		}
	}
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "run only the CI smoke subset")
	filter := flag.String("filter", "", "run only scenarios whose name contains this substring")
	out := flag.String("out", ".", "output directory for BENCH_*.json files")
	list := flag.Bool("list", false, "print the scenario matrix and exit")
	workers := flag.Int("workers", 0, "worker-pool width for parallel build scenarios (0 = GOMAXPROCS)")
	seqBaseline := flag.Bool("seq-baseline", true, "also run the sequential engine for speedup + cross-engine check")
	check := flag.String("check", "", "directory of committed BENCH_*.json to verify deterministic fields against")
	flag.Parse()

	keep := func(name string, q bool) bool {
		if *quick && !q {
			return false
		}
		return *filter == "" || strings.Contains(name, *filter)
	}
	scenarios := bench.Scenarios()
	selected := scenarios[:0]
	for _, s := range scenarios {
		if keep(s.Name, s.Quick) {
			selected = append(selected, s)
		}
	}
	builds := bench.BuildScenarios()
	selectedB := builds[:0]
	for _, s := range builds {
		if keep(s.Name, s.Quick) {
			selectedB = append(selectedB, s)
		}
	}
	queries := bench.QueryScenarios()
	selectedQ := queries[:0]
	for _, s := range queries {
		if keep(s.Name, s.Quick) {
			selectedQ = append(selectedQ, s)
		}
	}
	serves := bench.ServeScenarios()
	selectedS := serves[:0]
	for _, s := range serves {
		if keep(s.Name, s.Quick) {
			selectedS = append(selectedS, s)
		}
	}
	clusters := bench.ClusterScenarios()
	selectedC := clusters[:0]
	for _, s := range clusters {
		if keep(s.Name, s.Quick) {
			selectedC = append(selectedC, s)
		}
	}
	schemes := bench.SchemeScenarios()
	selectedSch := schemes[:0]
	for _, s := range schemes {
		if keep(s.Name, s.Quick) {
			selectedSch = append(selectedSch, s)
		}
	}
	setdists := bench.SetDistScenarios()
	selectedSD := setdists[:0]
	for _, s := range setdists {
		if keep(s.Name, s.Quick) {
			selectedSD = append(selectedSD, s)
		}
	}
	updates := bench.UpdateScenarios()
	selectedU := updates[:0]
	for _, s := range updates {
		if keep(s.Name, s.Quick) {
			selectedU = append(selectedU, s)
		}
	}
	if *list {
		for _, s := range selected {
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, s.Algorithm, s.Topology, s.N, s.Quick)
		}
		for _, s := range selectedB {
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "build", s.Topology, s.N, s.Quick)
		}
		for _, s := range selectedQ {
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "query/"+s.Workload, s.Topology, s.N, s.Quick)
		}
		for _, s := range selectedS {
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "serve/estimate", s.Topology, s.N, s.Quick)
		}
		for _, s := range selectedC {
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "cluster/x"+fmt.Sprint(s.Daemons), s.Topology, s.N, s.Quick)
		}
		for _, s := range selectedSch {
			sp := s.Spec.Normalized()
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "scheme/"+sp.Scheme, sp.Topology, sp.N, s.Quick)
		}
		for _, s := range selectedSD {
			sp := s.Spec.Normalized()
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "setdist/"+s.Mode, sp.Topology, sp.N, s.Quick)
		}
		for _, s := range selectedU {
			sp := s.Spec.Normalized()
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "update/"+sp.Scheme, sp.Topology, sp.N, s.Quick)
		}
		return
	}
	total := len(selected) + len(selectedB) + len(selectedQ) + len(selectedS) + len(selectedC) + len(selectedSch) + len(selectedSD) + len(selectedU)
	if total == 0 {
		fmt.Fprintln(os.Stderr, "pde-bench: no scenario matches the selection")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "pde-bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "pde-bench: %d scenarios (%d construction, %d build, %d query, %d serve, %d cluster, %d scheme, %d setdist, %d update), GOMAXPROCS=%d\n",
		total, len(selected), len(selectedB), len(selectedQ), len(selectedS), len(selectedC), len(selectedSch), len(selectedSD), len(selectedU), runtime.GOMAXPROCS(0))
	failed := 0
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", name, err)
		failed++
	}
	// writeAndCheck persists one report and, with -check, verifies its
	// deterministic fields against the committed artifact. It reports
	// whether the scenario fully succeeded.
	writeAndCheck := func(name, filename string, data []byte) bool {
		if err := os.WriteFile(filepath.Join(*out, filename), append(data, '\n'), 0o644); err != nil {
			fail(name, fmt.Errorf("write: %w", err))
			return false
		}
		if *check != "" {
			if err := checkAgainst(*check, filename, data); err != nil {
				fail(name, fmt.Errorf("regression check: %w", err))
				return false
			}
		}
		return true
	}
	for _, s := range selected {
		rep, err := bench.RunScenario(s, *seqBaseline)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		line := fmt.Sprintf("ok   %-28s rounds=%-6d msgs=%-9d wall=%.1fms",
			s.Name, rep.ActiveRounds, rep.Messages, float64(rep.WallNS)/1e6)
		if rep.SeqWallNS > 0 {
			line += fmt.Sprintf(" seq=%.1fms speedup=%.2fx", float64(rep.SeqWallNS)/1e6, rep.Speedup)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	for _, s := range selectedB {
		rep, err := bench.RunBuildScenario(s, *workers)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		fmt.Fprintf(os.Stderr, "ok   %-28s instances=%-3d workers=%d seq=%.1fms par=%.1fms speedup=%.2fx fp=%s\n",
			s.Name, rep.Instances, rep.Workers,
			float64(rep.SeqBuildNS)/1e6, float64(rep.ParBuildNS)/1e6, rep.Speedup, rep.Fingerprint)
	}
	queryCache := bench.NewQueryCache()
	for _, s := range selectedQ {
		rep, err := bench.RunQueryScenario(s, queryCache)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		line := fmt.Sprintf("ok   %-28s queries=%-8d legacy=%.2fMq/s oracle=%.2fMq/s speedup=%.1fx",
			s.Name, rep.Queries, rep.LegacyQPS/1e6, rep.OracleQPS/1e6, rep.Speedup)
		if rep.RoutesPerSec > 0 {
			line += fmt.Sprintf(" routes/s=%.0f", rep.RoutesPerSec)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	for _, s := range selectedS {
		rep, err := bench.RunServeScenario(s, queryCache)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		fmt.Fprintf(os.Stderr, "ok   %-28s queries=%-8d inproc=%.2fMq/s serve=%.2fMq/s ratio=%.2f wire=%.2fMq/s wratio=%.2f depth=%d allocs/op=%.1f\n",
			s.Name, rep.Queries, rep.InprocQPS/1e6, rep.ServeQPS/1e6, rep.Ratio,
			rep.WireQPS/1e6, rep.WireRatio, rep.WireDepth, rep.WireAllocsPerOp)
	}
	for _, s := range selectedC {
		rep, err := bench.RunClusterScenario(s, queryCache)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		line := fmt.Sprintf("ok   %-28s queries=%-8d", s.Name, rep.Queries)
		for _, p := range rep.Scaling {
			line += fmt.Sprintf(" x%d=%.2fMq/s", p.Daemons, p.QPS/1e6)
		}
		line += fmt.Sprintf(" failover_worst=%.1fms failovers=%d",
			float64(rep.Failover.WorstBatchNS)/1e6, rep.Failover.Failovers)
		fmt.Fprintln(os.Stderr, line)
	}
	for _, s := range selectedSch {
		rep, err := bench.RunSchemeScenario(s)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		fmt.Fprintf(os.Stderr, "ok   %-28s scheme=%-7s stretch=%.2f/%.0f bytes=%.0fKiB qps=%.2fMq/s routes/s=%.0f\n",
			s.Name, rep.Scheme, rep.MeasuredStretch, rep.StretchBound,
			float64(rep.TableBytes)/1024, rep.EstimateQPS/1e6, rep.RoutesPerSec)
	}
	for _, s := range selectedSD {
		rep, err := bench.RunSetDistScenario(s)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		fmt.Fprintf(os.Stderr, "ok   %-28s |A|=%-3d |B|=%-3d evaluated=%d/%d pruned=%.0f%% speedup=%.2fx\n",
			s.Name, rep.SetA, rep.SetB, rep.Queries, rep.Pairs,
			100*float64(rep.Pruned)/float64(rep.Pairs), rep.Speedup)
	}
	for _, s := range selectedU {
		rep, err := bench.RunUpdateScenario(s)
		if err != nil {
			fail(s.Name, err)
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fail(s.Name, fmt.Errorf("marshal: %w", err))
			continue
		}
		if !writeAndCheck(s.Name, rep.Filename(), data) {
			continue
		}
		fmt.Fprintf(os.Stderr, "ok   %-28s updates=%-3d delta=%-3d avg_damage=%.2f update=%.1fms rebuild=%.1fms speedup=%.2fx\n",
			s.Name, rep.Updates, rep.DeltaUpdates, rep.AvgDamage,
			float64(rep.UpdateWallNS)/1e6, float64(rep.RebuildWallNS)/1e6, rep.Speedup)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pde-bench: %d of %d scenarios failed\n", failed, total)
		os.Exit(1)
	}
}
