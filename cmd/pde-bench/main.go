// Command pde-bench runs the reproducible benchmark matrix and writes one
// machine-readable BENCH_<scenario>.json per scenario (schema documented
// in internal/bench/harness.go). CI uploads these as artifacts so the
// performance trajectory is tracked PR-over-PR.
//
// Every construction scenario runs the sequential engine and the sharded
// parallel engine on the same instance, records both wall clocks plus the
// speedup, and fails if any output or cost counter diverges between the
// two — the benchmark doubles as an end-to-end determinism check.
//
// Query scenarios (BENCH_query_*.json, schema "pde-query/v1", see
// internal/bench/query.go) measure the serving side: they build the
// tables once, then drive the same query stream through the legacy scan
// path and the compiled oracle, failing if any answer diverges.
//
// Usage:
//
//	pde-bench [-quick] [-filter substr] [-out dir] [-list] [-seq-baseline=false]
//
//	-quick         run only the small CI smoke subset
//	-filter s      run only scenarios whose name contains s
//	-out dir       directory for BENCH_*.json files (default ".")
//	-list          print the matrix and exit
//	-seq-baseline  also run the sequential engine for a speedup baseline
//	               and cross-engine output check (default true)
//
// The process exits non-zero if any scenario errors, so a CI job running
// it fails loudly rather than uploading partial results.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"pde/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run only the CI smoke subset")
	filter := flag.String("filter", "", "run only scenarios whose name contains this substring")
	out := flag.String("out", ".", "output directory for BENCH_*.json files")
	list := flag.Bool("list", false, "print the scenario matrix and exit")
	seqBaseline := flag.Bool("seq-baseline", true, "also run the sequential engine for speedup + cross-engine check")
	flag.Parse()

	scenarios := bench.Scenarios()
	selected := scenarios[:0]
	for _, s := range scenarios {
		if *quick && !s.Quick {
			continue
		}
		if *filter != "" && !strings.Contains(s.Name, *filter) {
			continue
		}
		selected = append(selected, s)
	}
	queries := bench.QueryScenarios()
	selectedQ := queries[:0]
	for _, s := range queries {
		if *quick && !s.Quick {
			continue
		}
		if *filter != "" && !strings.Contains(s.Name, *filter) {
			continue
		}
		selectedQ = append(selectedQ, s)
	}
	if *list {
		for _, s := range selected {
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, s.Algorithm, s.Topology, s.N, s.Quick)
		}
		for _, s := range selectedQ {
			fmt.Printf("%-28s %-12s %-9s n=%-5d quick=%v\n", s.Name, "query/"+s.Workload, s.Topology, s.N, s.Quick)
		}
		return
	}
	if len(selected)+len(selectedQ) == 0 {
		fmt.Fprintln(os.Stderr, "pde-bench: no scenario matches the selection")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "pde-bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "pde-bench: %d scenarios (%d construction, %d query), GOMAXPROCS=%d\n",
		len(selected)+len(selectedQ), len(selected), len(selectedQ), runtime.GOMAXPROCS(0))
	failed := 0
	for _, s := range selected {
		rep, err := bench.RunScenario(s, *seqBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", s.Name, err)
			failed++
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: marshal: %v\n", s.Name, err)
			failed++
			continue
		}
		path := filepath.Join(*out, rep.Filename())
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: write: %v\n", s.Name, err)
			failed++
			continue
		}
		line := fmt.Sprintf("ok   %-28s rounds=%-6d msgs=%-9d wall=%.1fms",
			s.Name, rep.ActiveRounds, rep.Messages, float64(rep.WallNS)/1e6)
		if rep.SeqWallNS > 0 {
			line += fmt.Sprintf(" seq=%.1fms speedup=%.2fx", float64(rep.SeqWallNS)/1e6, rep.Speedup)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	queryCache := bench.NewQueryCache()
	for _, s := range selectedQ {
		rep, err := bench.RunQueryScenario(s, queryCache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", s.Name, err)
			failed++
			continue
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: marshal: %v\n", s.Name, err)
			failed++
			continue
		}
		path := filepath.Join(*out, rep.Filename())
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: write: %v\n", s.Name, err)
			failed++
			continue
		}
		line := fmt.Sprintf("ok   %-28s queries=%-8d legacy=%.2fMq/s oracle=%.2fMq/s speedup=%.1fx",
			s.Name, rep.Queries, rep.LegacyQPS/1e6, rep.OracleQPS/1e6, rep.Speedup)
		if rep.RoutesPerSec > 0 {
			line += fmt.Sprintf(" routes/s=%.0f", rep.RoutesPerSec)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pde-bench: %d of %d scenarios failed\n", failed, len(selected)+len(selectedQ))
		os.Exit(1)
	}
}
