// Command pde-figure1 reproduces the paper's Figure 1 experiment on the
// lower-bound gadget: exact (S, h+1, σ)-detection needs ~σ·h rounds (all
// σ·h pairs cross the single bottleneck edge), while PDE's round budget is
// additive in h+σ.
//
// Usage:
//
//	pde-figure1 [-h 8] [-sigma 8] [-eps 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"pde"
	"pde/internal/baseline"
	"pde/internal/congest"
	"pde/internal/core"
)

func main() {
	h := flag.Int("h", 8, "gadget chain length h")
	sigma := flag.Int("sigma", 8, "sources per column σ")
	eps := flag.Float64("eps", 1, "PDE approximation slack")
	flag.Parse()

	f := pde.Figure1Gadget(*h, *sigma)
	fmt.Printf("gadget: h=%d σ=%d n=%d (σ·h = %d pairs must cross the dashed edge)\n",
		*h, *sigma, f.G.N(), *sigma**h)

	isSource := make([]bool, f.G.N())
	for _, s := range f.Sources {
		isSource[s] = true
	}
	want := baseline.ExactBruteForce(f.G, baseline.ExactParams{
		IsSource: isSource, H: *h + 1, Sigma: *sigma,
	})
	correctAt := -1
	probe := func(round int, list func(v int) []baseline.WEntry) bool {
		for _, u := range f.UNode {
			got := list(u)
			if len(got) != len(want[u]) {
				return false
			}
			for i := range got {
				if got[i].Dist != want[u][i].Dist || got[i].Src != want[u][i].Src {
					return false
				}
			}
		}
		correctAt = round
		return true
	}
	ex, err := baseline.ExactDetect(f.G, baseline.ExactParams{
		IsSource: isSource, H: *h + 1, Sigma: *sigma, Probe: probe,
	}, congest.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("exact detection: first-correct round=%d  budget=%d  (σ·h=%d)\n",
		correctAt, ex.Budget, *sigma**h)

	res, err := core.Run(f.G, core.Params{
		IsSource: isSource, H: *h + 1, Sigma: *sigma,
		Epsilon: *eps, CapMessages: true,
	}, congest.Config{Parallel: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("PDE (ε=%.2f):    budget=%d rounds  active=%d  instances=%d  (additive in h+σ)\n",
		*eps, res.BudgetRounds, res.ActiveRounds, len(res.Instances))
	fmt.Printf("scaling:         exact grows like σ·h; PDE like (h+σ)·log w_max — rerun with doubled h and σ to see the separation widen.\n")
}
