// Command pde-experiments regenerates every experiment table in
// EXPERIMENTS.md: one table per theorem/figure of the paper, each showing
// paper-predicted against measured values.
//
// Usage:
//
//	pde-experiments [-quick] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pde/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced-scale configuration")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E3)")
	flag.Parse()

	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}
	runners := map[string]func(bench.Scale) *bench.Table{
		"E1":  bench.E1APSP,
		"E1b": bench.E1Baselines,
		"E2":  bench.E2PDESweep,
		"E3":  bench.E3Figure1,
		"E4":  bench.E4Messages,
		"E5":  bench.E5RTC,
		"E6":  bench.E6Compact,
		"E7":  bench.E7Trees,
		"E8":  bench.E8Spanner,
		"E9":  bench.E9Ablation,
	}
	if *only != "" {
		run, ok := runners[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: E1 E1b E2 E3 E4 E5 E6 E7 E8 E9\n", *only)
			os.Exit(2)
		}
		fmt.Print(run(scale).Markdown())
		return
	}
	for _, t := range bench.All(scale) {
		fmt.Print(t.Markdown())
		fmt.Fprintln(os.Stderr, strings.Repeat("-", 20), t.ID, "done")
	}
}
