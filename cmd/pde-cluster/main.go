// Command pde-cluster is the multi-daemon coordinator: it fronts N
// pde-serve daemons behind one wire-compatible endpoint, placing named
// shards by rendezvous hashing over the daemons that serve them,
// health-probing the fleet, failing queries over to healthy replicas
// with retry and backoff, and propagating /v1/rebuild and /v1/update
// to every replica with a fingerprint-agreement check (it refuses to
// report success when replicas diverge).
//
// Usage:
//
//	pde-cluster -daemons http://127.0.0.1:7481,http://127.0.0.1:7482
//	            [-addr :7480] [-wire-addr :7490] [-pprof-addr localhost:6061]
//	            [-probe-interval 500ms] [-probe-timeout 2s]
//	            [-attempt-timeout 15s] [-admin-timeout 10m]
//	            [-retries 2] [-retry-backoff 25ms]
//
// With -wire-addr the coordinator additionally relays the PDE2 raw-TCP
// framed protocol (internal/wire): clients bind a shard and their
// Estimate / NextHop frames are store-and-forwarded to a healthy
// replica's own wire endpoint with the same failover discipline as the
// HTTP plane. Daemons must also run with -wire-addr to be eligible.
// -pprof-addr exposes net/http/pprof on a separate listener.
//
// A shard is replicated by configuring it (same name, same spec) on
// more than one daemon; the coordinator discovers the placement from
// the live daemons at boot and refuses to start if replicas of a shard
// already serve different fingerprints. Query clients point pde-query
// (or anything speaking the daemon protocol) at the coordinator; the
// placement and health view is served on /v1/cluster. Semantics are
// documented in docs/cluster.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pde/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":7480", "HTTP listen address")
	wireAddr := flag.String("wire-addr", "", "PDE2 raw-TCP relay listen address (empty = wire relay disabled)")
	pprofAddr := flag.String("pprof-addr", "", "net/http/pprof listen address, e.g. localhost:6061 (empty = disabled)")
	daemons := flag.String("daemons", "", "comma-separated pde-serve base URLs (required)")
	probeInterval := flag.Duration("probe-interval", 0, "health probe period per daemon (0 = default 500ms)")
	probeTimeout := flag.Duration("probe-timeout", 0, "single probe timeout (0 = default 2s)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "single forwarded-query attempt timeout (0 = default 15s)")
	adminTimeout := flag.Duration("admin-timeout", 0, "per-replica rebuild/update timeout (0 = default 10m)")
	retries := flag.Int("retries", 0, "extra failover passes over the replica set (0 = default 2, negative disables retries)")
	retryBackoff := flag.Duration("retry-backoff", 0, "sleep before the second pass, doubling per pass (0 = default 25ms)")
	flag.Parse()

	if *daemons == "" {
		fmt.Fprintln(os.Stderr, "pde-cluster: -daemons is required (comma-separated pde-serve base URLs)")
		os.Exit(2)
	}
	cfg := cluster.Config{
		Daemons:        strings.Split(*daemons, ","),
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		AttemptTimeout: *attemptTimeout,
		AdminTimeout:   *adminTimeout,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pde-cluster: %v\n", err)
		os.Exit(1)
	}
	defer coord.Close()
	for _, shard := range coord.Shards() {
		fmt.Fprintf(os.Stderr, "pde-cluster: shard %q -> %v\n", shard, coord.Placement(shard))
	}
	fmt.Fprintf(os.Stderr, "pde-cluster: fronting %d daemon(s), listening on %s\n",
		len(strings.Split(*daemons, ",")), *addr)

	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "pde-cluster: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pde-cluster: pprof listener: %v\n", err)
			}
		}()
	}
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pde-cluster: wire listen: %v\n", err)
			os.Exit(1)
		}
		relay := coord.ServeWire(ln)
		defer relay.Close()
		fmt.Fprintf(os.Stderr, "pde-cluster: PDE2 wire relay on %s\n", relay.Addr())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: coord}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "pde-cluster: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "pde-cluster: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "pde-cluster: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
