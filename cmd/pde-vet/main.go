// Command pde-vet runs the repo's static-analysis suite (see
// internal/analysis and docs/analysis.md): five analyzers proving the
// determinism, hot-swap, wire-layout, +Inf-unreachable and
// error-envelope invariants at build time.
//
// Two modes:
//
//	pde-vet [flags] [packages]     standalone multichecker (default ./...)
//	go vet -vettool=bin/pde-vet    unit-checker backend driven by cmd/go
//
// Standalone mode loads the module (and its dependency closure, from
// source — no export data or network needed) via `go list -json -deps`
// and analyzes every module package. In vettool mode cmd/go invokes the
// binary once per package with a JSON config file; the protocol
// (-V=full, -flags, *.cfg) is implemented in unitchecker.go.
//
// Exit status: 0 clean, 1 findings (2 in vettool mode, matching
// x/tools' unitchecker), 3 usage or load errors.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pde/internal/analysis"
)

// printVersion answers cmd/go's `-V=full` probe. The line must be
// "<name> version devel ... buildID=<hex>" (the shape cmd/go's toolID
// parser accepts for unreleased tools); hashing our own executable makes
// the vet build cache invalidate whenever the analyzers change.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("pde-vet version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

func main() {
	// cmd/go's vettool protocol probes before any normal flag parsing:
	// `pde-vet -V=full` must print a version line, `pde-vet -flags` the
	// supported analyzer flags, and a trailing *.cfg argument selects
	// unit-checker mode.
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(unitcheck(args[n-1]))
	}

	fs := flag.NewFlagSet("pde-vet", flag.ExitOnError)
	var (
		list        = fs.Bool("list", false, "list analyzers and exit")
		only        = fs.String("only", "", "comma-separated analyzer names to run (default all)")
		showAllowed = fs.Bool("show-allowed", false, "also print findings suppressed by //pde:allow")
		dir         = fs.String("C", ".", "run as if started in this directory")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pde-vet [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pde-vet: unknown analyzer %q\n", name)
				os.Exit(3)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, fset, err := analysis.LoadModule(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pde-vet: %v\n", err)
		os.Exit(3)
	}
	loadErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "pde-vet: %s: %v\n", p.PkgPath, e)
			loadErrs++
		}
	}
	if loadErrs > 0 {
		os.Exit(3)
	}

	diags := analysis.AnalyzePackages(analyzers, pkgs, fset)
	exit := 0
	for _, d := range diags {
		if d.Suppressed {
			if *showAllowed {
				fmt.Println(d)
			}
			continue
		}
		fmt.Println(d)
		exit = 1
	}
	os.Exit(exit)
}
