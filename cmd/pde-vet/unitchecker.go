package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"pde/internal/analysis"
)

// vetConfig is the JSON file cmd/go hands a -vettool for each package —
// the same schema golang.org/x/tools/go/analysis/unitchecker consumes.
// Only the fields pde-vet needs are declared; unknown fields are
// ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile and returns
// the process exit code: 0 clean, 2 findings (the unitchecker
// convention; cmd/go surfaces the tool's output whenever it exits
// non-zero).
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pde-vet: reading config: %v\n", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pde-vet: parsing %s: %v\n", cfgFile, err)
		return 3
	}

	// cmd/go requires the facts output file to exist even though the
	// pde-vet analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pde-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pde-vet: writing facts: %v\n", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "pde-vet: %v\n", err)
			return 3
		}
		files = append(files, af)
	}

	// Dependencies come from the export data cmd/go already built; the
	// stdlib gc importer reads it given a lookup into cfg.PackageFile.
	imp := &exportDataImporter{cfg: &cfg, fset: fset}
	tpkg, info, errs := analysis.TypeCheckFiles(fset, cfg.ImportPath, files, imp, true)
	if len(errs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "pde-vet: %v\n", e)
		}
		return 3
	}

	diags := analysis.RunAnalyzers(analysis.All(), fset, cfg.ImportPath, files, tpkg, info)
	exit := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		exit = 2
	}
	return exit
}

// exportDataImporter resolves imports through the gc export-data files
// listed in the vet config, memoizing via the shared gc importer.
type exportDataImporter struct {
	cfg  *vetConfig
	fset *token.FileSet
	gc   types.ImporterFrom
}

func (e *exportDataImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := e.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if e.gc == nil {
		lookup := func(p string) (io.ReadCloser, error) {
			file, ok := e.cfg.PackageFile[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		}
		e.gc = importer.ForCompiler(e.fset, "gc", lookup).(types.ImporterFrom)
	}
	return e.gc.ImportFrom(path, e.cfg.Dir, 0)
}
