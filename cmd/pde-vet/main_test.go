package main_test

// End-to-end test of the pde-vet driver: build the real binary, run it
// over the fixture module in testdata/fixturemod — which plants exactly
// six violations (two determinism, one atomicswap, one errenvelope, one
// wireframe, one infconvention) plus one //pde:allow-suppressed case —
// and assert the exit status, the diagnostic count and the suppression
// behavior in both standalone and `go vet -vettool` modes.

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const wantFindings = 6

var analyzerNames = []string{"atomicswap", "determinism", "errenvelope", "infconvention", "wireframe"}

// buildVet compiles the pde-vet binary once per test process.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pde-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pde-vet: %v\n%s", err, out)
	}
	return bin
}

func fixtureDir(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "fixturemod"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// diagLines filters process output down to diagnostic lines (one per
// finding, "<pos>: <analyzer>: <message>").
func diagLines(out string) []string {
	rx := regexp.MustCompile(`\.go:\d+:\d+: (` + strings.Join(analyzerNames, "|") + `):`)
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if rx.MatchString(l) {
			lines = append(lines, l)
		}
	}
	return lines
}

func TestStandaloneOverFixtureModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and loads a module")
	}
	bin := buildVet(t)

	cmd := exec.Command(bin, "-C", fixtureDir(t), "./...")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit status 1 on findings, got %v\n%s", err, out)
	}
	diags := diagLines(string(out))
	if len(diags) != wantFindings {
		t.Errorf("want %d findings, got %d:\n%s", wantFindings, len(diags), out)
	}
	for _, name := range analyzerNames {
		if !strings.Contains(string(out), " "+name+": ") {
			t.Errorf("no %s finding in output:\n%s", name, out)
		}
	}
	if strings.Contains(string(out), "Names") || strings.Contains(string(out), "suppressed") {
		t.Errorf("suppressed finding leaked into default output:\n%s", out)
	}
}

func TestStandaloneShowAllowed(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and loads a module")
	}
	bin := buildVet(t)

	cmd := exec.Command(bin, "-C", fixtureDir(t), "-show-allowed", "./...")
	out, _ := cmd.CombinedOutput()
	diags := diagLines(string(out))
	if len(diags) != wantFindings+1 {
		t.Errorf("-show-allowed: want %d lines (findings + 1 suppressed), got %d:\n%s",
			wantFindings+1, len(diags), out)
	}
	suppressed := 0
	for _, l := range diags {
		if strings.Contains(l, "suppressed by //pde:allow") {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("want exactly 1 suppressed finding, got %d:\n%s", suppressed, out)
	}
}

func TestVettoolProtocolOverFixtureModule(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over a module")
	}
	bin := buildVet(t)
	dir := fixtureDir(t)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	// An isolated GOFLAGS keeps a host -mod/-tags setting from leaking
	// into the fixture build.
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool must fail on the fixture, got success:\n%s", out)
	}
	diags := diagLines(string(out))
	if len(diags) != wantFindings {
		t.Errorf("want %d findings through the vettool protocol, got %d:\n%s",
			wantFindings, len(diags), out)
	}
	for _, name := range analyzerNames {
		if !strings.Contains(string(out), " "+name+": ") {
			t.Errorf("no %s finding in go vet output:\n%s", name, out)
		}
	}
	// The suppressed fixture case must not surface through go vet either.
	if strings.Contains(string(out), "build.go:29") {
		t.Errorf("//pde:allow line reported through the vettool protocol:\n%s", out)
	}
}

func TestVersionProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildVet(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	// The exact shape cmd/go's toolID parser accepts for unreleased
	// tools: "<name> version devel ... buildID=<hex>".
	if !regexp.MustCompile(`^pde-vet version devel .*buildID=[0-9a-f]+\n$`).Match(out) {
		t.Errorf("-V=full output %q does not match cmd/go's expected shape", out)
	}
}
