// Package core is a fixture "build" package: its import path ends in
// internal/core, so the determinism analyzer is in scope.
package core

import (
	"sort"
	"time"
)

// Combine collects map values in iteration order — a determinism
// violation (no sort follows).
func Combine(m map[int32]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m { // finding 1: determinism (append in map range)
		out = append(out, v)
	}
	return out
}

// Stamp reads the wall clock in build code — a determinism violation.
func Stamp() int64 {
	return time.Now().UnixNano() // finding 2: determinism (time.Now)
}

// Names demonstrates the escape hatch: suppressed, not a finding.
func Names(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m { //pde:allow(determinism) sort.Strings below imposes a total order
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
