// Package server is a fixture serving package: its import path ends in
// internal/server, so the errenvelope analyzer is in scope (atomicswap
// applies module-wide).
package server

import (
	"net/http"
	"sync/atomic"
)

type table struct{ gen int }

// Shard publishes its table through an atomic pointer.
type Shard struct {
	ptr atomic.Pointer[table]
}

// Current is the blessed access shape: no finding.
func (s *Shard) Current() *table { return s.ptr.Load() }

// Leak copies the atomic pointer out from under the swap discipline —
// an atomicswap violation.
func Leak(s *Shard) atomic.Pointer[table] {
	return s.ptr // finding 3: atomicswap
}

// Handle rejects a request with http.Error instead of the envelope —
// an errenvelope violation.
func Handle(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "no such shard", http.StatusNotFound) // finding 4: errenvelope
}
