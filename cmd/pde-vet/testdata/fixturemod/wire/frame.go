// Package wire is a fixture codec package for the module-wide wireframe
// and infconvention analyzers.
package wire

// Record declares the wrong packed size (fields total 12 bytes) — a
// wireframe violation.
//
//pde:wire size=16
type Record struct { // finding 5: wireframe
	ID   int32
	Dist float64
}

// Unreachable tests a float distance against a -1 sentinel — an
// infconvention violation.
func Unreachable(d float64) bool {
	return d == -1 // finding 6: infconvention
}
