package pde

import (
	"testing"

	"pde/internal/baseline"
)

// The facade tests exercise the public API end to end, the way the README
// quick start does.

func TestQuickStartFlow(t *testing.T) {
	g := RandomGraph(30, 0.15, 50, 1)
	res, err := ApproxAPSP(g, 0.5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	truth := GroundTruth(g)
	for v := 0; v < g.N(); v++ {
		if len(res.Lists[v]) != g.N() {
			t.Fatalf("node %d estimated %d of %d nodes", v, len(res.Lists[v]), g.N())
		}
		for _, e := range res.Lists[v] {
			exact := float64(truth.Dist(v, int(e.Src)))
			if e.Dist < exact-1e-6 || e.Dist > 1.5*exact+1e-6 {
				t.Fatalf("estimate %f for exact %f", e.Dist, exact)
			}
		}
	}
	router := NewRouter(g, res)
	rt, err := router.Route(0, int32(g.N()-1))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Path[len(rt.Path)-1] != g.N()-1 {
		t.Fatal("route did not deliver")
	}
}

func TestFacadeGenerators(t *testing.T) {
	if g := GeometricGraph(25, 0.4, 20, 2); !g.Connected() {
		t.Fatal("geometric graph disconnected")
	}
	if g := InternetGraph(40, 50, 3); !g.Connected() {
		t.Fatal("internet graph disconnected")
	}
	f := Figure1Gadget(3, 2)
	if f.G.N() != 12 {
		t.Fatalf("gadget size %d", f.G.N())
	}
	b := NewBuilder(2)
	b.AddEdge(0, 1, 7)
	g, err := b.Build()
	if err != nil || g.M() != 1 {
		t.Fatalf("builder: %v", err)
	}
}

func TestFacadeRoutingSchemes(t *testing.T) {
	g := RandomGraph(30, 0.15, 20, 4)
	sch, err := BuildRoutingScheme(g, RoutingParams{K: 2, Epsilon: 0.5, SampleProb: 0.3, Seed: 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sch.Route(0, sch.Labels[g.N()-1])
	if err != nil || rt.Path[len(rt.Path)-1] != g.N()-1 {
		t.Fatalf("rtc route: %v", err)
	}
	csch, err := BuildCompactScheme(g, CompactParams{K: 2, Epsilon: 0.5, C: 1.5, Seed: 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	crt, err := csch.Route(0, csch.Labels[g.N()-1])
	if err != nil || crt.Path[len(crt.Path)-1] != g.N()-1 {
		t.Fatalf("compact route: %v", err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := RandomGraph(20, 0.2, 10, 5)
	truth := GroundTruth(g)
	bf, err := BellmanFordAPSP(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := FloodingAPSP(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if bf.Dist[v][w] != truth.Dist(v, w) || fl.Dist[v][w] != truth.Dist(v, w) {
				t.Fatalf("baseline mismatch at (%d,%d)", v, w)
			}
		}
	}
	src := make([]bool, g.N())
	src[0] = true
	ex, err := ExactDetection(g, baseline.ExactParams{IsSource: src, H: 3, Sigma: 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Lists[0]) != 1 {
		t.Fatal("exact detection lost the source itself")
	}
	sp, err := BuildSpanner(g, 2, 1)
	if err != nil || len(sp.Edges) == 0 {
		t.Fatalf("spanner: %v", err)
	}
}
