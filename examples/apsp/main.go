// APSP example: the paper's Theorem 4.1 on an ISP-like topology — the
// name-independent setting (§4.1) where nodes keep their identifiers and
// every node learns a (1+ε)-approximate distance to every other node,
// deterministically, in O(ε⁻²·n·log n) rounds. Compare with the exact
// baselines to see the round/accuracy trade-off the paper studies.
package main

import (
	"fmt"
	"log"

	"pde"
)

func main() {
	const n = 60
	g := pde.InternetGraph(n, 40, 7)
	fmt.Printf("ISP-like topology: n=%d m=%d\n\n", g.N(), g.M())

	res, err := pde.ApproxAPSP(g, 0.5, pde.Config{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	truth := pde.GroundTruth(g)
	worst, sum, cnt := 1.0, 0.0, 0
	for v := 0; v < n; v++ {
		for _, e := range res.Lists[v] {
			exact := truth.Dist(v, int(e.Src))
			if exact == 0 {
				continue
			}
			s := e.Dist / float64(exact)
			sum += s
			cnt++
			if s > worst {
				worst = s
			}
		}
	}
	fmt.Printf("PDE APSP (ε=0.5, deterministic):\n")
	fmt.Printf("  rounds   %d budget / %d active\n", res.BudgetRounds, res.ActiveRounds)
	fmt.Printf("  messages %d\n", res.Messages)
	fmt.Printf("  stretch  max %.4f, mean %.4f (bound 1.5)\n\n", worst, sum/float64(cnt))

	bf, err := pde.BellmanFordAPSP(g, pde.Config{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bellman-Ford (exact):  rounds %d, messages %d\n",
		bf.Metrics.ActiveRounds, bf.Metrics.Messages)

	fl, err := pde.FloodingAPSP(g, pde.Config{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Flooding+Dijkstra (exact, OSPF-style): rounds %d, messages %d, %d words/node\n",
		fl.Metrics.ActiveRounds, fl.Metrics.Messages, fl.TableWords)

	fmt.Println("\nThe approximate algorithm pays rounds for bandwidth-frugality and")
	fmt.Println("per-node tables of O(n) words instead of the Θ(m) a topology flood needs.")
}
