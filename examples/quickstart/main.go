// Quickstart: build a small weighted network, run partial distance
// estimation (the paper's core primitive, Corollary 3.5), and read the
// results: each node learns (1+ε)-approximate distances and next hops to
// its σ nearest sources, in O((h+σ)ε⁻²·log n + D) CONGEST rounds.
package main

import (
	"fmt"
	"log"

	"pde"
)

func main() {
	// A 10-node network: two clusters joined by one long link.
	//
	//	0-1-2-3-4   (weights 1..4)
	//	    |           edge {2,7} weight 20
	//	5-6-7-8-9   (weights 1..4)
	b := pde.NewBuilder(10)
	for v := 0; v < 4; v++ {
		b.AddEdge(v, v+1, pde.Weight(v+1))
		b.AddEdge(v+5, v+6, pde.Weight(v+1))
	}
	b.AddEdge(2, 7, 20)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Sources: nodes 0 and 9. Every node finds its σ=2 nearest sources
	// within h=6 hops, with stretch at most 1+ε = 1.25.
	isSource := make([]bool, g.N())
	isSource[0], isSource[9] = true, true
	res, err := pde.RunEstimation(g, pde.EstimationParams{
		IsSource:    isSource,
		H:           6,
		Sigma:       2,
		Epsilon:     0.25,
		CapMessages: true,
	}, pde.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PDE finished: %d round budget (%d active), %d messages, %d rounding instances\n\n",
		res.BudgetRounds, res.ActiveRounds, res.Messages, len(res.Instances))

	truth := pde.GroundTruth(g)
	for v := 0; v < g.N(); v++ {
		fmt.Printf("node %d:", v)
		for _, e := range res.Lists[v] {
			fmt.Printf("  src=%d est=%.1f (exact %d, via %d)",
				e.Src, e.Dist, truth.Dist(v, int(e.Src)), e.Via)
		}
		fmt.Println()
	}

	// Compile the flat oracle once; it serves both the router's hop
	// decisions and direct distance queries.
	ora := pde.CompileOracle(res)

	// Route a packet from node 4 to source 9 using only local tables.
	router := ora.Router(g, res)
	rt, err := router.Route(4, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroute 4 -> 9: path %v, weight %d (exact distance %d)\n",
		rt.Path, rt.Weight, truth.Dist(4, 9))

	// Serve distance queries from the same compiled oracle: the answers
	// match res.Estimate bit-for-bit, but each query is one binary search
	// instead of a scan over every rounding instance — and the index is
	// safe for concurrent readers.
	queries := []pde.OracleQuery{{V: 4, S: 9}, {V: 6, S: 0}, {V: 1, S: 9}}
	answers := make([]pde.OracleAnswer, len(queries))
	ora.AnswerAll(queries, answers)
	fmt.Printf("\noracle (%d entries, %d bytes):\n", ora.Entries(), ora.Bytes())
	for i, q := range queries {
		if !answers[i].OK {
			fmt.Printf("  %d -> %d: not detected\n", q.V, q.S)
			continue
		}
		fmt.Printf("  %d -> %d: est=%.1f via %d\n", q.V, q.S, answers[i].Est.Dist, answers[i].Est.Via)
	}
}
