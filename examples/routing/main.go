// Routing example: Theorem 4.5's routing-table construction with node
// relabeling. Nodes receive O(log n)-bit labels encoding their nearest
// skeleton node and tree-routing interval; packets are then forwarded
// statelessly with stretch at most 6k−1+o(1). The example routes traffic
// between every pair and breaks each route into its short-range,
// long-range (spanner) and tree-descent legs.
package main

import (
	"fmt"
	"log"

	"pde"
)

func main() {
	const n = 50
	g := pde.GeometricGraph(n, 0.28, 30, 11)
	sch, err := pde.BuildRoutingScheme(g, pde.RoutingParams{
		K:          2,
		Epsilon:    0.25,
		SampleProb: 0.25, // force the long-range machinery at this scale
		Seed:       3,
	}, pde.Config{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geometric network: n=%d m=%d, skeleton |S|=%d, spanner %d edges\n",
		g.N(), g.M(), len(sch.Skeleton), len(sch.Span.Edges))
	fmt.Printf("construction rounds: %+v\n\n", sch.Rounds)

	truth := pde.GroundTruth(g)
	worst, sum := 0.0, 0.0
	cnt, short, long, tree := 0, 0, 0, 0
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			if v == w {
				continue
			}
			rt, err := sch.Route(v, sch.Labels[w])
			if err != nil {
				log.Fatal(err)
			}
			s := rt.Stretch(truth.Dist(v, w))
			sum += s
			cnt++
			if s > worst {
				worst = s
			}
			short += rt.ShortHops
			long += rt.LongHops
			tree += rt.TreeHops
		}
	}
	fmt.Printf("routed %d pairs: stretch max %.3f mean %.3f (bound 6k-1 = 11)\n",
		cnt, worst, sum/float64(cnt))
	fmt.Printf("hop mix: %d short-range, %d long-range, %d tree-descent\n\n", short, long, tree)

	// Show one concrete label and route.
	v, w := 0, n-1
	lw := sch.Labels[w]
	fmt.Printf("label of %d: skeleton=%d distToSkel=%.1f tree=[%d,+%d) — %d bits\n",
		w, lw.Skel, lw.DistToSkel, lw.Tree.Pre, lw.Tree.Size, sch.LabelBits(w))
	rt, err := sch.Route(v, lw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route %d -> %d: %v weight=%d exact=%d\n", v, w, rt.Path, rt.Weight, truth.Dist(v, w))
}
