// Compact routing example: the §4.3 Thorup–Zwick hierarchy. Sweeping k
// shows the trade-off the paper distributes: larger k shrinks per-node
// tables toward Õ(n^{1/k}) while stretch grows toward 4k−3. The k=3 run
// is repeated with level truncation (Lemma 4.12) under both execution
// strategies of Corollary 4.14.
package main

import (
	"fmt"
	"log"

	"pde"
)

func run(g *pde.Graph, p pde.CompactParams, name string) {
	sch, err := pde.BuildCompactScheme(g, p, pde.Config{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	truth := pde.GroundTruth(g)
	n := g.N()
	worst, sum, cnt := 0.0, 0.0, 0
	words := 0
	for v := 0; v < n; v++ {
		words += sch.TableWords(v)
		for w := 0; w < n; w++ {
			if v == w {
				continue
			}
			rt, err := sch.Route(v, sch.Labels[w])
			if err != nil {
				log.Fatal(err)
			}
			s := rt.Stretch(truth.Dist(v, w))
			sum += s
			cnt++
			if s > worst {
				worst = s
			}
		}
	}
	fmt.Printf("%-22s k=%d  stretch max %.3f / mean %.3f (bound %d)  tables %.0f words/node  labels ≤%d bits  rounds %d\n",
		name, p.K, worst, sum/float64(cnt), 4*p.K-3,
		float64(words)/float64(n), sch.LabelBits(0), sch.Rounds.Total)
}

func main() {
	const n = 48
	g := pde.RandomGraph(n, 0.12, 12, 5)
	fmt.Printf("network: n=%d m=%d\n\n", g.N(), g.M())

	for _, k := range []int{2, 3, 4} {
		run(g, pde.CompactParams{K: k, Epsilon: 0.25, C: 1.5, Seed: 9}, "direct hierarchy")
	}
	fmt.Println()
	run(g, pde.CompactParams{
		K: 3, Epsilon: 0.25, C: 1.5, L0: 2, Strategy: pde.StrategySimulate, Seed: 9,
	}, "truncated (simulate)")
	run(g, pde.CompactParams{
		K: 3, Epsilon: 0.25, C: 1.5, L0: 2, Strategy: pde.StrategyBroadcast, Seed: 9,
	}, "truncated (broadcast)")
	fmt.Println("\nLarger k trades stretch for smaller tables; truncation trades")
	fmt.Println("construction rounds between simulation (Thm 4.13) and a one-time")
	fmt.Println("skeleton broadcast (Cor 4.14).")
}
